"""The control-law layer: canonical registry + kernel unit tests.

The laws package is the single source of truth for every congestion
control constant and state-machine rule; these tests pin (a) that both
substrates resolve through the one canonical table, (b) that adapter
re-exports are identities (not copies) of the law constants, and
(c) the kernels' own behavior, independent of any substrate.
"""

import math

import pytest

from repro.cc import available_algorithms, make_controller
from repro.cc.laws import (
    ALGORITHMS,
    canonical_names,
    fluid_class,
    get_spec,
    kernel_parameters,
    packet_class,
)
from repro.cc.laws import bbr as bbr_laws
from repro.cc.laws import bbr2 as bbr2_laws
from repro.cc.laws import copa as copa_laws
from repro.cc.laws import cubic as cubic_laws
from repro.cc.laws import reno as reno_laws
from repro.cc.laws import vegas as vegas_laws
from repro.cc.laws import vivace as vivace_laws
from repro.cc.laws.base import CongestionEventGate, smooth_rtt
from repro.fluidsim.flows import available_fluid_algorithms, make_fluid_flow


# -- registry unification -----------------------------------------------------


def test_every_canonical_name_resolves_on_declared_substrates():
    for name in canonical_names():
        spec = ALGORITHMS[name]
        assert spec.substrates, f"{name} declares no substrate at all"
        if spec.packet is not None:
            cls = packet_class(name)
            assert cls.name == name
        if spec.fluid is not None:
            cls = fluid_class(name)
            assert cls.name == name


def test_packet_registry_matches_canonical_table():
    packet_names = {
        n for n in canonical_names() if ALGORITHMS[n].packet is not None
    }
    assert set(available_algorithms()) == packet_names


def test_fluid_registry_matches_canonical_table():
    fluid_names = {
        n for n in canonical_names() if ALGORITHMS[n].fluid is not None
    }
    assert set(available_fluid_algorithms()) == fluid_names


def test_both_substrates_instantiate_every_dual_algorithm():
    for name in canonical_names():
        spec = ALGORITHMS[name]
        if spec.packet is not None:
            controller = make_controller(name)
            assert controller.loss_based == spec.loss_based
        if spec.fluid is not None:
            flow = make_fluid_flow(name, flow_id=0, rtt=0.04)
            assert flow.loss_based == spec.loss_based


def test_get_spec_is_case_insensitive():
    assert get_spec("BBR") is ALGORITHMS["bbr"]


def test_get_spec_unknown_name_lists_alternatives():
    with pytest.raises(KeyError, match="westwood"):
        get_spec("westwood")


def test_kernel_parameters_nonempty_and_uppercase():
    for name in canonical_names():
        params = kernel_parameters(name)
        assert params, f"{name} exposes no law parameters"
        assert all(key.isupper() for key in params)


# -- single-sourcing: adapter constants ARE the law constants -----------------


def test_cubic_constants_single_sourced():
    import repro.cc.cubic as packet_cubic

    assert packet_cubic.C_CUBIC is cubic_laws.C_CUBIC
    assert packet_cubic.BETA_CUBIC is cubic_laws.BETA_CUBIC


def test_bbr_constants_single_sourced():
    import repro.cc.bbr as packet_bbr

    assert packet_bbr.GAIN_CYCLE is bbr_laws.GAIN_CYCLE
    assert packet_bbr.HIGH_GAIN is bbr_laws.HIGH_GAIN
    assert packet_bbr.CWND_GAIN is bbr_laws.CWND_GAIN


def test_bbr2_constants_single_sourced():
    import repro.cc.bbr2 as packet_bbr2

    assert packet_bbr2.LOSS_THRESH is bbr2_laws.LOSS_THRESH
    assert packet_bbr2.BETA is bbr2_laws.BETA
    assert packet_bbr2.HEADROOM is bbr2_laws.HEADROOM


def test_fluid_flows_module_defines_no_algorithm_constants():
    """The per-tick adapters hold no constants of their own."""
    import repro.fluidsim.flows as flows

    uppercase = {
        key
        for key, value in vars(flows).items()
        if key.isupper()
        and isinstance(value, (int, float, tuple, dict))
        and not isinstance(value, bool)
    }
    # Only structural imports from laws.base are allowed at module level.
    assert uppercase <= {"INITIAL_CWND_SEGMENTS", "MIN_CWND_SEGMENTS"}
    for cls_name in (
        "FluidBBR",
        "FluidBBR2",
        "FluidCubic",
        "FluidVegas",
        "FluidVivace",
    ):
        cls = getattr(flows, cls_name)
        own_constants = {
            key
            for key, value in vars(cls).items()
            if key.isupper() and isinstance(value, (int, float, tuple))
        }
        assert not own_constants, f"{cls_name} redefines {own_constants}"


# -- shared kernels -----------------------------------------------------------


def test_smooth_rtt_seed_and_ewma():
    assert smooth_rtt(None, 0.1) == 0.1
    assert smooth_rtt(0.1, 0.2) == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)


def test_congestion_event_gate_admits_once_per_interval():
    gate = CongestionEventGate()
    assert gate.admit(1.0, 0.05)  # First event always admitted.
    assert not gate.admit(1.04, 0.05)  # Within one RTT of the last.
    assert gate.admit(1.06, 0.05)  # A full interval later.


def test_congestion_event_gate_admits_when_interval_unknown():
    gate = CongestionEventGate()
    assert gate.admit(1.0, None)
    assert gate.admit(1.0, None)  # No srtt yet: every loss counts.


def test_cubic_k_matches_rfc_formula():
    w_max = 100.0
    k = cubic_laws.k_from_w_max(w_max)
    assert k == pytest.approx((w_max * 0.3 / 0.4) ** (1.0 / 3.0))
    # The cubic curve returns to w_max exactly at t = K.
    assert cubic_laws.window(k, k, w_max) == pytest.approx(w_max)


def test_cubic_fast_convergence_reduces_w_max_further():
    plain = cubic_laws.reduce_w_max(100.0, 120.0, fast_convergence=False)
    fast = cubic_laws.reduce_w_max(100.0, 120.0, fast_convergence=True)
    assert plain == 100.0
    assert fast == pytest.approx(100.0 * (2.0 - 0.7) / 2.0)


def test_reno_laws():
    assert reno_laws.md_window(100.0) == 50.0
    # One full window of ACKs grows cwnd by ~1 MSS.
    cwnd = 10 * 1500.0
    total = sum(
        reno_laws.ai_increment(1500, 1500, cwnd) for _ in range(10)
    )
    assert total == pytest.approx(1500.0)


def test_bbr_gain_cycle_shape():
    assert len(bbr_laws.GAIN_CYCLE) == 8
    assert bbr_laws.GAIN_CYCLE[0] == 1.25
    assert bbr_laws.GAIN_CYCLE[1] == 0.75
    assert all(g == 1.0 for g in bbr_laws.GAIN_CYCLE[2:])
    assert math.prod(bbr_laws.GAIN_CYCLE) == pytest.approx(1.25 * 0.75)


def test_bbr_full_pipe_detector_three_plateau_rounds():
    detector = bbr_laws.FullPipeDetector()
    assert not detector.update(100.0)  # 25%+ growth: keep going.
    assert not detector.update(125.0)
    assert not detector.update(126.0)  # Plateau round 1.
    assert not detector.update(126.0)  # Plateau round 2.
    assert detector.update(126.0)  # Plateau round 3: pipe full.
    assert detector.full
    assert detector.update(1e9)  # Latched.


def test_bbr_gain_cycler_rotates_once_per_rtprop():
    cycler = bbr_laws.GainCycler()
    cycler.reset(0.0)
    assert cycler.gain == 1.0  # Neutral phase first.
    gains = [cycler.advance(0.05 * (i + 1), 0.04) for i in range(8)]
    # One full rotation through the 8-phase schedule.
    assert gains == [1.0, 1.0, 1.0, 1.0, 1.0, 1.25, 0.75, 1.0]


def test_bbr_rtprop_tracker_expiry_accepts_worse_sample():
    tracker = bbr_laws.RtPropTracker(window=10.0)
    tracker.update(0.0, 0.040)
    tracker.update(1.0, 0.050)  # Worse and fresh: rejected.
    assert tracker.rtprop == 0.040
    tracker.update(11.0, 0.050)  # Worse but the filter expired.
    assert tracker.rtprop == 0.050


def test_bbr2_loss_rate_and_cut():
    assert bbr2_laws.loss_rate(2.0, 98.0) == pytest.approx(0.02)
    assert bbr2_laws.loss_rate(0.0, 0.0) == 0.0
    cut = bbr2_laws.cut_inflight_hi(1e6, 5e5, 3000.0)
    assert cut == pytest.approx(5e5 * 0.7)
    assert bbr2_laws.cut_inflight_hi(1e6, 100.0, 3000.0) == 3000.0


def test_vegas_queued_packets():
    # cwnd 30 MSS, RTT inflated 2x over base: half the window is queued.
    diff = vegas_laws.queued_packets(30 * 1500.0, 0.08, 0.04, 1500.0)
    assert diff == pytest.approx(15.0)
    assert vegas_laws.queued_packets(1e5, 0.08, float("inf"), 1500.0) == 0.0


def test_vegas_window_adjustment_band():
    assert vegas_laws.window_adjustment(1.0, 1500.0) == 1500.0
    assert vegas_laws.window_adjustment(3.0, 1500.0) == 0.0
    assert vegas_laws.window_adjustment(5.0, 1500.0) == -1500.0


def test_copa_target_rate():
    assert copa_laws.target_rate(1500.0, 0.5, 0.01) == pytest.approx(
        1500.0 / (0.5 * 0.01)
    )
    assert math.isinf(copa_laws.target_rate(1500.0, 0.5, 0.0))
    assert copa_laws.double_velocity(1e6) == copa_laws.VELOCITY_CAP


def test_vivace_utility_penalizes_latency_and_loss():
    clean = vivace_laws.utility(1e6, 0.0, 0.0, 900.0, 11.35)
    latency = vivace_laws.utility(1e6, 0.01, 0.0, 900.0, 11.35)
    lossy = vivace_laws.utility(1e6, 0.0, 0.05, 900.0, 11.35)
    assert clean > latency
    assert clean > lossy
    assert vivace_laws.utility(0.0, 0.0, 0.0, 900.0, 11.35) == 0.0


def test_vivace_gradient_step_doubles_amplifier_same_direction():
    rate, direction, amp = vivace_laws.gradient_step(
        1e6, 10.0, 5.0, 1.0, 0
    )
    assert direction == 1
    assert amp == 1.0  # Direction changed from 0: reset.
    assert rate == pytest.approx(1e6 * (1 + vivace_laws.EPSILON))
    rate2, direction2, amp2 = vivace_laws.gradient_step(
        rate, 10.0, 5.0, amp, direction
    )
    assert direction2 == 1
    assert amp2 == 2.0  # Same direction again: amplifier doubles.
    assert rate2 > rate


def test_vivace_gradient_step_floors_at_min_rate():
    rate, direction, _amp = vivace_laws.gradient_step(
        vivace_laws.MIN_RATE, 0.0, 10.0, 8.0, -1
    )
    assert direction == -1
    assert rate == vivace_laws.MIN_RATE
