"""Validation reports (model vs Ware vs simulator)."""

import pytest

from repro.experiments.validation import (
    ValidationReport,
    ValidationRow,
    validate_two_flow,
)
from repro.util.config import LinkConfig


def make_report(actual, model, ware):
    rows = [
        ValidationRow(buffer_bdp=float(i + 1), actual=a, model=m, ware=w)
        for i, (a, m, w) in enumerate(zip(actual, model, ware))
    ]
    return ValidationReport(
        link=LinkConfig.from_mbps_ms(100, 40, 1),
        backend="fluid",
        duration=60.0,
        rows=rows,
    )


def test_error_metrics():
    report = make_report(
        actual=[10.0, 20.0], model=[11.0, 19.0], ware=[15.0, 30.0]
    )
    assert report.model_mae == pytest.approx(1.0)
    assert report.ware_mae == pytest.approx(7.5)
    assert report.model_wins
    assert report.model_mre == pytest.approx((0.1 + 0.05) / 2)


def test_model_within():
    report = make_report(
        actual=[10.0, 20.0], model=[10.4, 25.0], ware=[0.0, 0.0]
    )
    assert report.model_within(0.05) == pytest.approx(0.5)
    assert report.model_within(0.30) == pytest.approx(1.0)


def test_render_contains_summary():
    report = make_report([10.0], [11.0], [20.0])
    text = report.render()
    assert "MAE" in text and "model wins" in text


def test_validate_two_flow_fluid_backend():
    link = LinkConfig.from_mbps_ms(100, 40, 1)
    report = validate_two_flow(
        link,
        buffer_bdps=[2, 5],
        duration=120,
        backend="fluid",
        seed=4,
    )
    assert len(report.rows) == 2
    assert report.rows[0].buffer_bdp == 2
    # On the fluid backend at paper scale the model must beat Ware.
    assert report.model_wins
    # And stay within 35% relative error at these moderate buffers.
    assert report.model_mre < 0.35


def test_validate_requires_buffers():
    link = LinkConfig.from_mbps_ms(100, 40, 1)
    with pytest.raises(ValueError):
        validate_two_flow(link, buffer_bdps=[])
