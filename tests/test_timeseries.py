"""Trace time-series helpers."""

import pytest

from repro.analysis.timeseries import (
    detect_sawtooth_peaks,
    moving_average,
    resample,
    sawtooth_period,
)


class TestMovingAverage:
    def test_growing_head(self):
        assert moving_average([2.0, 4.0, 6.0], window=2) == [2.0, 3.0, 5.0]

    def test_window_one_is_identity(self):
        values = [3.0, 1.0, 4.0]
        assert moving_average(values, window=1) == values

    def test_smooths_constant(self):
        assert moving_average([5.0] * 10, window=4) == [5.0] * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], window=0)


class TestResample:
    def test_step_function(self):
        out = resample([0.0, 1.0], [10.0, 20.0], interval=0.5, end=1.5)
        assert out == [10.0, 10.0, 20.0, 20.0]

    def test_before_first_sample(self):
        out = resample([1.0], [7.0], interval=0.5, end=1.0)
        assert out == [7.0, 7.0, 7.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            resample([0.0], [1.0, 2.0], 0.5, 1.0)
        with pytest.raises(ValueError):
            resample([], [], 0.5, 1.0)
        with pytest.raises(ValueError):
            resample([0.0], [1.0], 0.0, 1.0)


class TestSawtooth:
    def make_sawtooth(self, n_epochs=4, peak=100.0, drop=0.3):
        """A CUBIC-like sawtooth: ramp to peak, multiplicative drop."""
        times, values = [], []
        t = 0.0
        value = peak * (1 - drop)
        for _ in range(n_epochs):
            while value < peak:
                times.append(t)
                values.append(value)
                value += 5.0
                t += 0.1
            times.append(t)
            values.append(peak)
            value = peak * (1 - drop)
            t += 0.1
        return times, values

    def test_detects_all_completed_peaks(self):
        # The final epoch ends at its peak without a drop, so n_epochs−1
        # peaks complete the peak→drop signature.
        times, values = self.make_sawtooth(n_epochs=4)
        peaks = detect_sawtooth_peaks(times, values, min_drop=0.2)
        assert len(peaks) == 3
        assert all(v == pytest.approx(100.0) for _t, v in peaks)

    def test_small_dips_ignored(self):
        values = [100.0, 95.0, 100.0, 96.0, 100.0]
        times = [float(i) for i in range(5)]
        assert detect_sawtooth_peaks(times, values, min_drop=0.2) == []

    def test_period(self):
        times, values = self.make_sawtooth(n_epochs=3)
        peaks = detect_sawtooth_peaks(times, values)
        period = sawtooth_period(peaks)
        assert period > 0
        assert sawtooth_period(peaks[:1]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_sawtooth_peaks([0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            detect_sawtooth_peaks([0.0], [1.0], min_drop=0.0)


def test_fluid_cubic_trace_shows_sawtooth():
    """End-to-end: a CUBIC fluid flow's recorded in-flight trace exhibits
    a multiplicative-decrease sawtooth with the 0.3 drop."""
    from repro.fluidsim import FluidSimulation, FluidSpec
    from repro.util.config import LinkConfig

    link = LinkConfig.from_mbps_ms(50, 40, 3)
    sim = FluidSimulation(
        link, [FluidSpec("cubic")], trace_interval=0.1
    )
    sim.run(60)
    times = [row[0] for row in sim.trace]
    inflight = [row[1][0] for row in sim.trace]
    peaks = detect_sawtooth_peaks(times, inflight, min_drop=0.2)
    assert len(peaks) >= 2
