"""Scalar-vs-vectorized fluid substrate parity.

The vectorized substrate (:mod:`repro.fluidsim.vec`) promises *bitwise*
agreement with the scalar fluid simulator: same tick sequence, same
loss-lottery draws, same IEEE-754 rounding (both substrates route every
power function through :mod:`repro.fluidsim.mathops`).  These tests pin
that contract across every CCA x loss mode x RTT regime, plus the
batching property the execution engine relies on: running N points in
one ndarray block equals running them one at a time.

Everything here compares :class:`repro.sim.network.SimulationResult`
dataclasses with ``==`` — exact floats, no tolerances.
"""

import pytest

from repro.cc.laws import ALGORITHMS, canonical_names, registry
from repro.check import Checker, InvariantViolation
from repro.fluidsim import (
    LOSS_MODES,
    BatchPoint,
    FluidSpec,
    run_fluid,
    run_fluid_vec,
    run_fluid_vec_batch,
)
from repro.fluidsim.mathops import np
from repro.util.config import LinkConfig

#: A shallow buffer so every loss-based CCA sees overflow events.
LINK = LinkConfig.from_mbps_ms(20, 20, 1.5)

DURATION = 12.0
WARMUP = 2.0
JITTER = 0.4


def _scenario(cc, rtts=None):
    """Four same-CCA flows (mixed RTTs when ``rtts`` is given)."""
    rtts = rtts or [None] * 4
    return [FluidSpec(cc=cc, rtt=rtt) for rtt in rtts]


def _run_both(flows, loss_mode, seed=11, **kwargs):
    kwargs.setdefault("duration", DURATION)
    kwargs.setdefault("warmup", WARMUP)
    kwargs.setdefault("start_jitter", JITTER)
    scalar = run_fluid(LINK, flows, loss_mode=loss_mode, seed=seed, **kwargs)
    vec = run_fluid_vec(
        LINK, flows, loss_mode=loss_mode, seed=seed, **kwargs
    )
    return scalar, vec


@pytest.mark.parametrize("loss_mode", LOSS_MODES)
@pytest.mark.parametrize("cc", canonical_names())
def test_every_cca_matches_scalar_bitwise(cc, loss_mode):
    scalar, vec = _run_both(_scenario(cc), loss_mode)
    assert vec == scalar


@pytest.mark.parametrize("loss_mode", LOSS_MODES)
def test_mixed_rtt_mixed_cca_matches_scalar_bitwise(loss_mode):
    """Unequal RTTs force the vectorized bisection queue solve."""
    flows = [
        FluidSpec(cc="cubic", rtt=0.02),
        FluidSpec(cc="bbr", rtt=0.04),
        FluidSpec(cc="reno", rtt=0.08),
        FluidSpec(cc="vegas", rtt=0.02),
        FluidSpec(cc="copa", rtt=0.04),
        FluidSpec(cc="vivace", rtt=0.08),
        FluidSpec(cc="bbr2", rtt=0.02),
    ]
    scalar, vec = _run_both(flows, loss_mode, seed=5)
    assert vec == scalar


def test_flow_kwargs_and_lifetimes_match_scalar():
    """Spec kwargs, staggered starts, and byte-limited flows."""
    flows = [
        FluidSpec(cc="cubic", cc_kwargs={"fast_convergence": False}),
        FluidSpec(cc="copa", cc_kwargs={"delta": 0.25}),
        FluidSpec(cc="bbr", cc_kwargs={"gain_cycling": False}),
        FluidSpec(cc="vivace", start_time=2.0),
        FluidSpec(cc="reno", stop_time=8.0),
        FluidSpec(cc="vegas", size_bytes=400_000),
    ]
    scalar, vec = _run_both(flows, "proportional", seed=3)
    assert vec == scalar


def test_batched_points_equal_point_at_a_time():
    """The engine-facing property: one ndarray block == N solo runs."""
    points = []
    for i, cc in enumerate(canonical_names()):
        for j, mode in enumerate(LOSS_MODES):
            points.append(
                BatchPoint(
                    link=LinkConfig.from_mbps_ms(20, 20, 1.0 + j),
                    flows=_scenario(
                        cc, rtts=[0.02, 0.04, 0.02, 0.08][: 2 + j]
                    ),
                    duration=8.0 + i,
                    warmup=1.0,
                    loss_mode=mode,
                    seed=100 + 7 * i + j,
                    start_jitter=0.3,
                )
            )
    batched = run_fluid_vec_batch(points)
    solo = [run_fluid_vec_batch([point])[0] for point in points]
    assert batched == solo


def test_batched_points_equal_scalar():
    """And the same heterogeneous batch matches the scalar simulator."""
    points = [
        BatchPoint(
            link=LinkConfig.from_mbps_ms(20, 20, 1.0 + j),
            flows=_scenario(cc),
            duration=8.0,
            warmup=1.0,
            loss_mode=mode,
            seed=j,
            start_jitter=0.3,
        )
        for j, (cc, mode) in enumerate(
            [("cubic", "sync"), ("bbr", "desync"), ("vivace", "proportional")]
        )
    ]
    batched = run_fluid_vec_batch(points)
    for point, vec_result in zip(points, batched):
        scalar = run_fluid(
            point.link,
            list(point.flows),
            duration=point.duration,
            warmup=point.warmup,
            loss_mode=point.loss_mode,
            seed=point.seed,
            start_jitter=point.start_jitter,
        )
        assert vec_result == scalar


def test_run_mix_backend_fluid_vec_equals_fluid():
    from repro.experiments.runner import run_mix

    kwargs = dict(duration=15.0, trials=3, seed=9, loss_mode="desync")
    mix = [("cubic", 2), ("bbr", 2)]
    assert run_mix(LINK, mix, backend="fluid-vec", **kwargs) == run_mix(
        LINK, mix, backend="fluid", **kwargs
    )


def test_run_mix_batch_equals_per_request_calls():
    from repro.experiments.runner import run_mix, run_mix_batch

    requests = [
        dict(
            link=LINK,
            mix=[("cubic", 2), ("bbr", 1)],
            backend="fluid-vec",
            duration=10.0,
            trials=2,
            seed=4,
        ),
        dict(
            link=LinkConfig.from_mbps_ms(10, 40, 2),
            mix=[("reno", 2)],
            backend="fluid-vec",
            duration=12.0,
            seed=8,
            loss_mode="sync",
        ),
        dict(
            link=LINK,
            mix=[("vegas", 2)],
            backend="fluid",
            duration=10.0,
            seed=2,
        ),
    ]
    assert run_mix_batch(requests) == [run_mix(**r) for r in requests]


# -- registry ----------------------------------------------------------------


def test_every_algorithm_has_a_vec_kernel():
    for name, spec in ALGORITHMS.items():
        assert spec.vec is not None
        cls = registry.vec_class(name)
        assert cls.__name__.startswith("Vec")
        assert "fluid-vec" in spec.substrates


def test_vec_class_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown congestion control"):
        registry.vec_class("quic-magic")


# -- validation --------------------------------------------------------------


def test_batch_point_validation():
    flows = _scenario("cubic")
    with pytest.raises(ValueError, match="at least one flow"):
        BatchPoint(link=LINK, flows=[], duration=5.0)
    with pytest.raises(ValueError, match="loss_mode"):
        BatchPoint(link=LINK, flows=flows, duration=5.0, loss_mode="nope")
    with pytest.raises(ValueError, match="duration"):
        BatchPoint(link=LINK, flows=flows, duration=0.0)
    with pytest.raises(ValueError, match="warmup"):
        BatchPoint(link=LINK, flows=flows, duration=5.0, warmup=5.0)


def test_unknown_kernel_kwargs_raise():
    flows = [FluidSpec(cc="cubic", cc_kwargs={"beta": 0.5})]
    with pytest.raises(TypeError, match="beta"):
        run_fluid_vec(LINK, flows, duration=2.0)


def test_copa_delta_must_be_positive():
    flows = [FluidSpec(cc="copa", cc_kwargs={"delta": 0.0})]
    with pytest.raises(ValueError, match="delta"):
        run_fluid_vec(LINK, flows, duration=2.0)


# -- invariant checker -------------------------------------------------------


def test_checker_runs_on_vec_array_state():
    check = Checker()
    run_fluid_vec(
        LINK, _scenario("cubic"), duration=4.0, seed=1, check=check
    )
    assert check.checks_run > 0


def test_checker_flags_corrupt_vec_state():
    check = Checker()
    active = np.array([True, True])
    with pytest.raises(InvariantViolation, match="finite and positive"):
        check.fluid_vec_flows(
            np.array([1.0, 1.0]),
            np.array([1500.0, float("nan")]),
            active,
            np.array([0, 1]),
            ("cubic", "bbr"),
        )
    with pytest.raises(InvariantViolation):
        check.fluid_vec_conservation(
            np.array([1.0]),
            total_rate=np.array([1e9]),
            capacity=np.array([1e6]),
            queue=np.array([0.0]),
            buffer_bytes=np.array([1e5]),
            slack=np.array([1.0]),
            strict=np.array([True]),
            active=np.array([True]),
        )


# -- substrate redirect ------------------------------------------------------


def test_use_fluid_substrate_redirects_fluid_requests():
    import os

    from repro.experiments.runner import (
        FLUID_SUBSTRATE_ENV,
        fluid_substrate,
        use_fluid_substrate,
    )

    assert fluid_substrate("fluid") == "fluid"
    assert fluid_substrate("packet") == "packet"
    with use_fluid_substrate("fluid-vec"):
        assert fluid_substrate("fluid") == "fluid-vec"
        assert fluid_substrate("packet") == "packet"
        assert fluid_substrate("fluid-vec") == "fluid-vec"
    assert fluid_substrate("fluid") == "fluid"
    assert os.environ.get(FLUID_SUBSTRATE_ENV) is None
    with pytest.raises(ValueError, match="substrate"):
        with use_fluid_substrate("warp-drive"):
            pass  # pragma: no cover


def test_redirected_run_mix_matches_declared_fluid():
    from repro.experiments.runner import run_mix, use_fluid_substrate

    mix = [("cubic", 1), ("bbr", 1)]
    plain = run_mix(LINK, mix, duration=10.0, seed=6)
    with use_fluid_substrate("fluid-vec"):
        redirected = run_mix(LINK, mix, duration=10.0, seed=6)
    assert redirected == plain
