"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.game import ThroughputTable
from repro.core.multi_flow import desync_backoff, predict_multi_flow
from repro.core.nash import predict_nash
from repro.core.two_flow import (
    CUBIC_BACKOFF,
    predict_two_flow,
    solve_bbr_buffer_share,
)
from repro.core.ware import ware_prediction
from repro.util.config import LinkConfig
from repro.util.filters import WindowedMax, WindowedMin

links = st.builds(
    LinkConfig.from_mbps_ms,
    st.floats(min_value=1.0, max_value=1000.0),
    st.floats(min_value=1.0, max_value=500.0),
    st.floats(min_value=1.05, max_value=99.0),
)


@given(links)
def test_two_flow_bandwidths_partition_capacity(link):
    pred = predict_two_flow(link)
    assert 0 <= pred.bbr_bandwidth <= link.capacity * (1 + 1e-9)
    assert 0 <= pred.cubic_bandwidth <= link.capacity * (1 + 1e-9)
    assert pred.bbr_bandwidth + pred.cubic_bandwidth == (
        pytest_approx(link.capacity)
    )


def pytest_approx(x, rel=1e-6):
    import pytest

    return pytest.approx(x, rel=rel)


@given(links)
def test_two_flow_solution_satisfies_equation18(link):
    b, k = link.buffer_bytes, link.bdp_bytes
    assume(b > k * 1.01)
    bb = solve_bbr_buffer_share(link)
    h = (b - k) / 2
    lhs = h + h * k / (h + bb)
    rhs = CUBIC_BACKOFF * (b - bb) * (1 + k / b)
    assert math.isclose(lhs, rhs, rel_tol=1e-6)


@given(links)
def test_buffer_share_within_buffer(link):
    bb = solve_bbr_buffer_share(link)
    assert 0 <= bb <= link.buffer_bytes * (1 + 1e-9)


@given(
    links,
    st.floats(min_value=0.55, max_value=0.999),
    st.floats(min_value=0.55, max_value=0.999),
)
def test_buffer_share_monotone_in_backoff(link, r1, r2):
    assume(abs(r1 - r2) > 1e-6)
    lo, hi = sorted((r1, r2))
    assert solve_bbr_buffer_share(link, backoff=lo) <= (
        solve_bbr_buffer_share(link, backoff=hi) + 1e-6 * link.buffer_bytes
    )


@given(links, st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=40))
def test_multi_flow_region_is_ordered(link, n_cubic, n_bbr):
    pred = predict_multi_flow(link, n_cubic, n_bbr)
    assert pred.bbr_aggregate_desync >= pred.bbr_aggregate_sync - 1e-6
    lo, hi = pred.per_flow_bbr_bounds()
    assert lo <= hi


@given(links, st.integers(min_value=2, max_value=200))
def test_nash_prediction_within_flow_count(link, n_flows):
    pred = predict_nash(link, n_flows)
    assert 0 <= pred.n_bbr_sync <= n_flows + 1e-9
    assert 0 <= pred.n_bbr_desync <= n_flows + 1e-9
    assert pred.n_cubic_low <= pred.n_cubic_high


@given(links, st.integers(min_value=1, max_value=50))
def test_ware_fractions_bounded(link, n_bbr):
    pred = ware_prediction(link, n_bbr=n_bbr)
    assert 0.0 <= pred.bbr_fraction <= 1.0
    assert 0.0 <= pred.cubic_fraction <= 1.0
    assert 0.0 <= pred.probe_time_fraction <= 1.0


@given(st.integers(min_value=1, max_value=10_000))
def test_desync_backoff_in_valid_range(n_cubic):
    r = desync_backoff(n_cubic)
    assert 0.7 <= r < 1.0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=1000),
        ),
        min_size=1,
        max_size=200,
    ).map(lambda items: sorted(items, key=lambda t: t[0]))
)
def test_windowed_max_equals_naive_max(samples):
    window = 10.0
    f = WindowedMax(window)
    for i, (now, value) in enumerate(samples):
        got = f.update(now, value)
        expected = max(
            v for t, v in samples[: i + 1] if t >= now - window
        )
        assert got == expected


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0, max_value=1000),
        ),
        min_size=1,
        max_size=200,
    ).map(lambda items: sorted(items, key=lambda t: t[0]))
)
def test_windowed_min_equals_naive_min(samples):
    window = 7.0
    f = WindowedMin(window)
    for i, (now, value) in enumerate(samples):
        got = f.update(now, value)
        expected = min(
            v for t, v in samples[: i + 1] if t >= now - window
        )
        assert got == expected


@st.composite
def monotone_games(draw):
    """Games where BBR's advantage decreases in k (the Figure-6 shape)."""
    n = draw(st.integers(min_value=2, max_value=30))
    capacity = 100.0
    fair = capacity / n
    start = draw(st.floats(min_value=-5.0, max_value=30.0))
    slope = draw(st.floats(min_value=0.1, max_value=5.0))
    lambda_a, lambda_b = [], []
    for k in range(n + 1):
        adv = start - slope * k
        b = max(fair + adv, 0.0) if k > 0 else 0.0
        total_b = min(b * k, capacity)
        a = (capacity - total_b) / (n - k) if k < n else 0.0
        lambda_a.append(max(a, 0.0))
        lambda_b.append(b)
    return ThroughputTable(n_flows=n, lambda_a=lambda_a, lambda_b=lambda_b)


@given(monotone_games())
@settings(max_examples=50)
def test_nash_equilibrium_always_exists(table):
    """§4.1's theorem: games with the A→B line structure have an NE."""
    assert table.nash_equilibria(tolerance=1e-9)


@given(monotone_games(), st.integers(min_value=0, max_value=30))
@settings(max_examples=50)
def test_best_response_terminates_at_ne(table, start):
    start = min(start, table.n_flows)
    path = table.best_response_path(start)
    assert len(path) <= table.n_flows + 2
    assert table.is_nash(path[-1], tolerance=1e-9)
