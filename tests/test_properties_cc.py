"""Property-based tests for congestion controllers (hypothesis).

Whatever (well-formed) sequence of ACKs and losses arrives, every
controller must keep its outputs sane: cwnd finite and at/above the
floor, pacing rate non-negative.  This is the robustness contract the
simulators rely on.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import available_algorithms, make_controller
from repro.cc.signals import LossEvent, RateSample

ALGORITHMS = available_algorithms()


@st.composite
def signal_sequences(draw):
    """A random but well-formed interleaving of ACK and loss signals."""
    n = draw(st.integers(min_value=1, max_value=120))
    events = []
    now = 0.0
    delivered = 0
    for _ in range(n):
        now += draw(
            st.floats(min_value=1e-4, max_value=0.5, allow_nan=False)
        )
        if draw(st.booleans()):
            rtt = draw(st.floats(min_value=1e-3, max_value=2.0))
            rate = draw(st.floats(min_value=1e3, max_value=1e9))
            acked = draw(st.integers(min_value=100, max_value=3000))
            prior = delivered
            delivered += acked
            events.append(
                RateSample(
                    rtt=rtt,
                    delivery_rate=rate,
                    delivered=delivered,
                    delivered_at_send=max(prior - 50_000, 0),
                    acked_bytes=acked,
                    in_flight=draw(
                        st.integers(min_value=0, max_value=1_000_000)
                    ),
                    is_app_limited=draw(st.booleans()),
                    now=now,
                )
            )
        else:
            events.append(
                LossEvent(
                    lost_bytes=draw(
                        st.integers(min_value=100, max_value=100_000)
                    ),
                    in_flight=draw(
                        st.integers(min_value=0, max_value=1_000_000)
                    ),
                    now=now,
                    lost_packets=draw(
                        st.integers(min_value=1, max_value=50)
                    ),
                )
            )
    return events


@given(st.sampled_from(ALGORITHMS), signal_sequences())
@settings(max_examples=120, deadline=None)
def test_controller_outputs_stay_sane(name, events):
    cc = make_controller(name)
    for event in events:
        if isinstance(event, RateSample):
            cc.on_ack(event)
        else:
            cc.on_loss(event)
        cc.clamp_cwnd()
        assert math.isfinite(cc.cwnd)
        assert cc.cwnd >= cc.min_cwnd
        if cc.pacing_rate is not None:
            assert math.isfinite(cc.pacing_rate)
            assert cc.pacing_rate >= 0


@given(st.sampled_from(ALGORITHMS))
def test_fresh_controller_state(name):
    cc = make_controller(name)
    assert cc.cwnd == 10 * cc.mss
    assert cc.name == name
