"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cc.signals import LossEvent, RateSample
from repro.util.config import LinkConfig


@pytest.fixture
def link_100m_40ms():
    """100 Mbps / 40 ms / 5 BDP — the paper's most common setting."""
    return LinkConfig.from_mbps_ms(100, 40, 5)


@pytest.fixture
def link_50m_40ms():
    """50 Mbps / 40 ms / 5 BDP."""
    return LinkConfig.from_mbps_ms(50, 40, 5)


@pytest.fixture
def small_link():
    """A small link for fast packet-level tests (10 Mbps / 20 ms)."""
    return LinkConfig.from_mbps_ms(10, 20, 5)


class ControllerDriver:
    """Feed a congestion controller synthetic ACK/loss signals.

    Simulates a *perfect* pipe of the given rate and RTT: every ``ack()``
    advances the clock by one packet's worth of serialization time and
    delivers a RateSample as a sender would.
    """

    def __init__(self, cc, rate: float = 1_250_000.0, rtt: float = 0.04):
        self.cc = cc
        self.rate = rate
        self.rtt = rtt
        self.now = 0.0
        self.delivered = 0
        self.mss = cc.mss

    def ack(
        self,
        rtt: float = None,
        delivery_rate: float = None,
        in_flight: int = None,
        app_limited: bool = False,
    ) -> RateSample:
        """Deliver one ACK and return the sample that was fed in."""
        self.now += self.mss / self.rate
        prior_delivered = self.delivered
        self.delivered += self.mss
        sample = RateSample(
            rtt=self.rtt if rtt is None else rtt,
            delivery_rate=(
                self.rate if delivery_rate is None else delivery_rate
            ),
            delivered=self.delivered,
            delivered_at_send=max(
                prior_delivered - int(self.rate * self.rtt), 0
            ),
            acked_bytes=self.mss,
            in_flight=(
                int(self.rate * self.rtt) if in_flight is None else in_flight
            ),
            is_app_limited=app_limited,
            now=self.now,
        )
        self.cc.on_ack(sample)
        self.cc.clamp_cwnd()
        return sample

    def acks(self, count: int, **kwargs) -> None:
        """Deliver ``count`` ACKs."""
        for _ in range(count):
            self.ack(**kwargs)

    def run_for(self, seconds: float, **kwargs) -> None:
        """Deliver ACKs at the pipe rate for ``seconds`` of virtual time."""
        end = self.now + seconds
        while self.now < end:
            self.ack(**kwargs)

    def lose(self, packets: int = 1, in_flight: int = None) -> None:
        """Deliver a loss event."""
        event = LossEvent(
            lost_bytes=packets * self.mss,
            in_flight=(
                int(self.rate * self.rtt) if in_flight is None else in_flight
            ),
            now=self.now,
            lost_packets=packets,
        )
        self.cc.on_loss(event)
        self.cc.clamp_cwnd()


@pytest.fixture
def driver_factory():
    """Factory for :class:`ControllerDriver` instances."""
    return ControllerDriver
