"""Cross-substrate parity: packet and fluid simulators, same laws.

Both simulators now drive the identical control-law kernels in
:mod:`repro.cc.laws` through substrate-specific adapters, so on the
paper's headline scenario (1 CUBIC vs 1 BBR across a buffer-depth
sweep, Figure 3/5 style) they must agree on the *outcome*, not just the
constants: BBR's bandwidth share within 10 percentage points at every
grid point, and the same qualitative shape.

The grid deliberately skips the 1.5–2.5 BDP shelf: that is the fig-3
cliff where BBR's inflight cap stops covering buffer + BDP, and the two
substrates place the cliff edge a fraction of a BDP apart, so shares
*on* the edge are a discontinuity comparison, not a parity one.  The
shape tests below still pin the cliff's existence on both substrates.

This is the slowest module in the suite (~1 min: seven packet-level
120 s runs at 50 Mbps); everything derives from one module-scoped
sweep.
"""

import pytest

from repro.experiments.runner import run_mix
from repro.util.config import LinkConfig

#: Buffer depths (BDP multiples) for the parity grid.
BUFFER_GRID = (1.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0)

#: Maximum tolerated |packet − fluid| BBR share, in absolute fraction.
SHARE_TOLERANCE = 0.10

_DURATION = 120.0


@pytest.fixture(scope="module")
def shares():
    """BBR's share of capacity per substrate at each buffer depth."""
    grid = {}
    for bdp in BUFFER_GRID:
        link = LinkConfig.from_mbps_ms(50, 40, bdp)
        point = {}
        for backend in ("packet", "fluid"):
            result = run_mix(
                link,
                [("cubic", 1), ("bbr", 1)],
                duration=_DURATION,
                backend=backend,
            )
            point[backend] = result.per_flow["bbr"] / link.capacity
        grid[bdp] = point
    return grid


@pytest.mark.parametrize("bdp", BUFFER_GRID)
def test_bbr_share_matches_across_substrates(shares, bdp):
    point = shares[bdp]
    assert point["packet"] == pytest.approx(
        point["fluid"], abs=SHARE_TOLERANCE
    ), (
        f"at {bdp} BDP: packet {point['packet']:.3f} "
        f"vs fluid {point['fluid']:.3f}"
    )


@pytest.mark.parametrize("backend", ["packet", "fluid"])
def test_bbr_dominates_shallow_buffers_on_both_substrates(shares, backend):
    """Figure 3's left edge: with ~1 BDP of buffer, BBR's inflight cap
    is never reached and it starves CUBIC on either substrate."""
    assert shares[1.0][backend] > 0.8


@pytest.mark.parametrize("backend", ["packet", "fluid"])
def test_bbr_share_declines_into_deep_buffers(shares, backend):
    """Figure 3's shape: the cliff past 1 BDP, then a deep-buffer
    regime where CUBIC holds the majority share."""
    assert shares[1.0][backend] > shares[3.0][backend]
    assert shares[12.0][backend] < 0.5


def test_substrates_agree_on_cliff_magnitude(shares):
    """The 1→3 BDP share drop itself matches across substrates."""
    drop_packet = shares[1.0]["packet"] - shares[3.0]["packet"]
    drop_fluid = shares[1.0]["fluid"] - shares[3.0]["fluid"]
    assert drop_packet == pytest.approx(drop_fluid, abs=2 * SHARE_TOLERANCE)
    assert drop_packet > 0.3
    assert drop_fluid > 0.3
