"""The model's six §2.3 assumptions, verified against the simulators.

The paper's model is only as good as its assumptions; this module pins
each one empirically so that a future change to the simulators or CCAs
that silently breaks an assumption fails loudly here.
"""

import pytest

from repro.fluidsim import FluidSimulation, FluidSpec
from repro.sim.network import DumbbellNetwork, FlowSpec, run_dumbbell
from repro.sim.trace import CwndTracer
from repro.util.config import LinkConfig


@pytest.fixture(scope="module")
def traced_mixed_run():
    """1 CUBIC vs 1 BBR on a 20 Mbps / 40 ms / 5 BDP link, 60 s."""
    link = LinkConfig.from_mbps_ms(20, 40, 5)
    net = DumbbellNetwork(link, [FlowSpec("cubic"), FlowSpec("bbr")])
    tracer = CwndTracer(net, interval=0.2)
    result = net.run(60, warmup=10)
    return link, net, tracer, result


def test_assumption1_link_fully_utilized(traced_mixed_run):
    """Assumption 1: with a ≥1 BDP buffer and a CUBIC flow present, the
    link stays (nearly) fully utilized."""
    link, _net, _tracer, result = traced_mixed_run
    assert result.aggregate_throughput() >= 0.92 * link.capacity


def test_assumption1_buffer_never_empty(traced_mixed_run):
    """...and there are always packets in the buffer (on average a
    substantial fraction of it)."""
    link, net, _tracer, _result = traced_mixed_run
    mean_queue = net.bottleneck.stats.mean_occupancy(60)
    assert mean_queue > 0.2 * link.buffer_bytes


def test_assumption2_bbr_cwnd_bound(traced_mixed_run):
    """Assumption 2: competing with CUBIC, BBR is cwnd-bound with about
    2×(estimated BDP) in flight — equivalently cwnd ≈ 2·bw_est·RTT⁺."""
    _link, net, tracer, _result = traced_mixed_run
    bbr = net.senders[1].cc
    assert bbr.rtprop is not None and bbr.btl_bw > 0
    expected_cap = 2.0 * bbr.btl_bw * bbr.rtprop
    assert net.senders[1].cc.cwnd == pytest.approx(expected_cap, rel=0.3)
    # And the sender actually rides the cap: median in-flight within a
    # factor of the cwnd in steady state.
    steady = [
        s for s in tracer.for_flow(1) if s.time > 20 and s.state == "PROBE_BW"
    ]
    riding = sum(1 for s in steady if s.in_flight >= 0.5 * s.cwnd)
    assert riding >= 0.6 * len(steady)


def test_assumption4_bbr_loss_agnostic():
    """Assumption 4: BBRv1 does not react to loss (direct check)."""
    from repro.cc import make_controller
    from repro.cc.signals import LossEvent

    cc = make_controller("bbr")
    cwnd = cc.cwnd
    for i in range(50):
        cc.on_loss(
            LossEvent(lost_bytes=15_000, in_flight=10_000, now=float(i))
        )
    assert cc.cwnd == cwnd


def test_assumption5_probe_rtt_time_negligible(traced_mixed_run):
    """Assumption 5: ProbeRTT occupies ~200 ms per 10 s — a few percent
    of the flow's lifetime."""
    _link, _net, tracer, _result = traced_mixed_run
    durations = tracer.state_durations(1)
    total = sum(durations.values())
    probe_fraction = durations.get("PROBE_RTT", 0.0) / total
    assert probe_fraction < 0.12  # Generous: sampling quantizes at 0.2 s.
    assert probe_fraction > 0.0   # But it does happen.


def test_assumption6_equal_rtts_default():
    """Assumption 6 is a *setup* choice: both simulators default every
    flow to the link's base RTT unless told otherwise."""
    link = LinkConfig.from_mbps_ms(20, 40, 3)
    result = run_dumbbell(
        link, [FlowSpec("cubic"), FlowSpec("bbr")], duration=5
    )
    rtts = [f.min_rtt for f in result.flows]
    assert rtts[0] == pytest.approx(rtts[1], rel=0.1)


def test_assumption3_drops_proportional_to_share():
    """Assumption 3 (uniform mixing in the buffer) is what justifies
    charging fluid drops in proportion to in-flight share; check the
    fluid simulator distributes losses that way between two identical
    CUBIC flows."""
    link = LinkConfig.from_mbps_ms(50, 40, 3)
    sim = FluidSimulation(
        link,
        [FluidSpec("cubic"), FluidSpec("cubic")],
        seed=5,
        start_jitter=0.5,
    )
    sim.run(90)
    lost = sim._lost
    assert all(l > 0 for l in lost)
    # Identical flows: cumulative drops within a small factor.
    assert max(lost) / min(lost) < 2.5
