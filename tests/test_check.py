"""Runtime invariant sanitizer (repro.check).

Covers the default/env plumbing, the checker's individual invariants,
law-table consistency with the canonical registry, violation pickling,
and the two seeded-defect end-to-end tests: a bottleneck link that
leaks a byte per drop, and a BBR adapter that performs an illegal
state-machine transition.
"""

import os
import pickle

import pytest

from repro.cc.base import _REGISTRY, register
from repro.cc.bbr import BBRv1
from repro.cc.laws import bbr as bbr_laws
from repro.cc.laws import bbr2 as bbr2_laws
from repro.cc.laws import state_names
from repro.check import (
    MAX_PENDING_EVENTS,
    Checker,
    InvariantViolation,
    clear_default,
    enabled_from_env,
    get_default,
    resolve,
    set_default,
    use,
)
from repro.check import laws as check_laws
from repro.experiments.runner import run_mix
from repro.fluidsim.core import FluidSpec, run_fluid
from repro.sim.link import Link
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


@pytest.fixture(autouse=True)
def _clean_default():
    """Leave the process-wide checker state untouched by each test."""
    clear_default()
    saved = os.environ.pop("REPRO_CHECK", None)
    yield
    clear_default()
    if saved is None:
        os.environ.pop("REPRO_CHECK", None)
    else:
        os.environ["REPRO_CHECK"] = saved


def small_link(mbps=10, rtt=20, bdp=5):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


# -- default / environment plumbing ----------------------------------------


def test_default_is_disabled():
    assert get_default() is None
    assert resolve(None) is None


def test_explicit_checker_wins_over_default():
    check = Checker()
    assert resolve(check) is check


def test_set_default_and_clear():
    check = Checker()
    set_default(check)
    assert get_default() is check
    assert resolve(None) is check
    clear_default()
    assert get_default() is None


def test_env_enables_a_shared_checker():
    os.environ["REPRO_CHECK"] = "1"
    first = get_default()
    assert isinstance(first, Checker)
    assert get_default() is first  # One shared checker per process.


def test_explicit_none_disables_despite_env():
    os.environ["REPRO_CHECK"] = "1"
    set_default(None)
    assert get_default() is None
    with use(Checker()) as check:
        assert get_default() is check
    assert get_default() is None  # use() restored the explicit None.


@pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
def test_env_falsey_values(value):
    assert not enabled_from_env({"REPRO_CHECK": value})


@pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
def test_env_truthy_values(value):
    assert enabled_from_env({"REPRO_CHECK": value})


def test_use_restores_previous_default():
    outer = Checker()
    set_default(outer)
    with use(None):
        assert get_default() is None
    assert get_default() is outer


def test_checker_rejects_bad_construction():
    with pytest.raises(ValueError):
        Checker(tolerance=-1.0)
    with pytest.raises(ValueError):
        Checker(recent=0)


# -- individual invariants --------------------------------------------------


def test_event_loop_clock_regression_trips():
    check = Checker()
    check.event_loop_tick(when=1.0, now=0.5, pending=3)  # Fine.
    with pytest.raises(InvariantViolation) as excinfo:
        check.event_loop_tick(when=0.4, now=0.5, pending=3)
    assert excinfo.value.check == "sim.clock"


def test_event_loop_queue_bound_trips():
    check = Checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.event_loop_tick(
            when=1.0, now=0.5, pending=MAX_PENDING_EVENTS + 1
        )
    assert excinfo.value.check == "sim.queue_bound"


def test_link_audit_conservation():
    check = Checker()
    check.link_audit(
        1.0,
        offered=100,
        forwarded=40,
        dropped=10,
        queued=30,
        in_service=20,
        buffer_bytes=1000,
        gauge=30,
    )
    with pytest.raises(InvariantViolation) as excinfo:
        check.link_audit(
            1.0,
            offered=101,
            forwarded=40,
            dropped=10,
            queued=30,
            in_service=20,
            buffer_bytes=1000,
            gauge=30,
        )
    assert excinfo.value.check == "link.conservation"


def test_link_audit_queue_bounds_and_gauge():
    check = Checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.link_audit(
            1.0,
            offered=2000,
            forwarded=0,
            dropped=0,
            queued=1500,
            in_service=500,
            buffer_bytes=1000,
            gauge=1500,
        )
    assert excinfo.value.check == "link.queue_bounds"
    with pytest.raises(InvariantViolation) as excinfo:
        check.link_audit(
            1.0,
            offered=100,
            forwarded=0,
            dropped=0,
            queued=50,
            in_service=50,
            buffer_bytes=1000,
            gauge=49,
        )
    assert excinfo.value.check == "link.occupancy_gauge"


class _StubCC:
    name = "cubic"
    cwnd = 30000.0
    min_cwnd = 3000.0
    pacing_rate = None
    mss = 1500


def test_flow_update_negative_inflight():
    check = Checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.flow_update(1.0, 0, _StubCC(), in_flight=-1)
    assert excinfo.value.check == "flow.inflight"
    assert excinfo.value.flow_id == 0
    assert excinfo.value.cc == "cubic"


def test_flow_update_cwnd_bounds():
    check = Checker()
    cc = _StubCC()
    cc.cwnd = float("nan")
    with pytest.raises(InvariantViolation) as excinfo:
        check.flow_update(1.0, 0, cc, in_flight=0)
    assert excinfo.value.check == "cc.cwnd_bounds"
    cc.cwnd = 100.0  # Below the 2-segment floor.
    with pytest.raises(InvariantViolation) as excinfo:
        check.flow_update(1.0, 0, cc, in_flight=0)
    assert excinfo.value.check == "cc.cwnd_bounds"


def test_flow_update_pacing_rate():
    check = Checker()
    cc = _StubCC()
    cc.pacing_rate = 0.0
    with pytest.raises(InvariantViolation) as excinfo:
        check.flow_update(1.0, 0, cc, in_flight=0)
    assert excinfo.value.check == "cc.pacing_rate"


def test_flow_update_bbr_gain_law():
    check = Checker()
    cc = BBRv1()
    check.flow_update(0.1, 0, cc, in_flight=0)  # Legal STARTUP gain.
    cc.pacing_gain = 1.1  # Not a legal gain in any BBRv1 phase.
    with pytest.raises(InvariantViolation) as excinfo:
        check.flow_update(0.2, 0, cc, in_flight=0)
    assert excinfo.value.check == "cc.law"
    assert "pacing gain" in excinfo.value.message


def test_state_transition_legal_and_illegal():
    check = Checker()
    check.state_transition(
        0.1, "bbr", 0, bbr_laws.STARTUP, bbr_laws.DRAIN, substrate="packet"
    )
    with pytest.raises(InvariantViolation) as excinfo:
        check.state_transition(
            0.2,
            "bbr",
            0,
            bbr_laws.PROBE_BW,
            bbr_laws.DRAIN,
            substrate="packet",
        )
    exc = excinfo.value
    assert exc.check == "cc.transition"
    assert exc.cc == "bbr"
    # The violation remembers the preceding legal transition.
    assert any(name == "cc.state" for _, name, _, _ in exc.recent)


def test_state_transition_unknown_state():
    check = Checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.state_transition(
            0.1, "bbr2", 0, bbr2_laws.STARTUP, "WARP", substrate="packet"
        )
    assert excinfo.value.check == "cc.state"


def test_state_transition_unconstrained_cca():
    check = Checker()
    # CUBIC has no state machine: any labels pass.
    check.state_transition(0.1, "cubic", 0, "A", "B", substrate="packet")
    check.state_transition(0.1, "nosuchcc", 0, "A", "B", substrate="packet")


def test_fluid_conservation_strict_and_clamped():
    check = Checker()
    check.fluid_conservation(
        1.0,
        total_rate=99.0,
        capacity=100.0,
        queue=10.0,
        buffer_bytes=100.0,
        slack=1.0,
        strict=True,
    )
    with pytest.raises(InvariantViolation) as excinfo:
        check.fluid_conservation(
            1.0,
            total_rate=102.0,
            capacity=100.0,
            queue=10.0,
            buffer_bytes=100.0,
            slack=1.0,
            strict=True,
        )
    assert excinfo.value.check == "fluid.rate_conservation"
    # The same overshoot is tolerated on a clamped (overflow) tick.
    check.fluid_conservation(
        1.0,
        total_rate=102.0,
        capacity=100.0,
        queue=100.0,
        buffer_bytes=100.0,
        slack=1.0,
        strict=False,
    )


def test_fluid_conservation_negative_rate_and_queue():
    check = Checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.fluid_conservation(
            1.0,
            total_rate=-1.0,
            capacity=100.0,
            queue=0.0,
            buffer_bytes=100.0,
            slack=1.0,
            strict=False,
        )
    assert excinfo.value.check == "fluid.rate_conservation"
    with pytest.raises(InvariantViolation) as excinfo:
        check.fluid_conservation(
            1.0,
            total_rate=50.0,
            capacity=100.0,
            queue=101.0,
            buffer_bytes=100.0,
            slack=1.0,
            strict=True,
        )
    assert excinfo.value.check == "fluid.queue_bounds"


# -- law tables track the canonical registry -------------------------------


def test_v1_tables_match_law_module():
    assert check_laws.V1_STATES == set(state_names("bbr").values())
    for old, new in check_laws.V1_PACKET_TRANSITIONS:
        assert old in check_laws.V1_STATES
        assert new in check_laws.V1_STATES
    assert set(check_laws.V1_PACKET_GAINS) == check_laws.V1_STATES


def test_v2_tables_match_law_module():
    assert check_laws.V2_STATES == set(state_names("bbr2").values())
    for old, new in check_laws.V2_PACKET_TRANSITIONS:
        assert old in check_laws.V2_STATES
        assert new in check_laws.V2_STATES
    assert set(check_laws.V2_PACKET_GAINS) == check_laws.V2_STATES


def test_fluid_states_are_a_v1_subset():
    assert check_laws.FLUID_BBR_STATES < check_laws.V1_STATES


def test_tables_resolve_by_law_module_not_name():
    # Both BBR generations resolve through their registered law module.
    assert check_laws.states_for("bbr", "packet") == check_laws.V1_STATES
    assert check_laws.states_for("BBR2", "packet") == check_laws.V2_STATES
    assert (
        check_laws.states_for("bbr2", "fluid")
        == check_laws.FLUID_BBR_STATES
    )
    assert check_laws.states_for("cubic", "packet") is None
    assert check_laws.transitions_for("reno", "fluid") is None
    assert check_laws.packet_invariants("vegas") is None
    assert check_laws.fluid_invariants("copa") is None


def test_registry_state_names_are_strings_only():
    names = state_names("bbr")
    assert names == {
        "STARTUP": "STARTUP",
        "DRAIN": "DRAIN",
        "PROBE_BW": "PROBE_BW",
        "PROBE_RTT": "PROBE_RTT",
    }
    assert all(isinstance(v, str) for v in state_names("bbr2").values())
    assert state_names("cubic") == {}  # No state machine.


# -- violation structure ----------------------------------------------------


def test_violation_pickle_round_trip():
    original = InvariantViolation(
        "offered != accounted",
        check="link.conservation",
        time=1.5,
        flow_id=3,
        cc="cubic",
        fingerprint="abc123",
        context={"backend": "packet"},
        recent=[(1.0, "cc.state", 3, {"from": "A", "to": "B"})],
    )
    clone = pickle.loads(pickle.dumps(original))
    assert isinstance(clone, InvariantViolation)
    assert clone.message == original.message
    assert clone.check == "link.conservation"
    assert clone.time == 1.5
    assert clone.flow_id == 3
    assert clone.cc == "cubic"
    assert clone.fingerprint == "abc123"
    assert clone.context == {"backend": "packet"}
    assert clone.recent == original.recent


def test_violation_str_mentions_context():
    exc = InvariantViolation(
        "boom",
        check="cc.transition",
        time=2.0,
        flow_id=1,
        cc="bbr",
        fingerprint="deadbeefcafe1234",
        recent=[(1.9, "cc.state", 1, {"from": "STARTUP", "to": "DRAIN"})],
    )
    text = str(exc)
    assert "[cc.transition] boom" in text
    assert "t=2.000000s" in text
    assert "flow=1" in text
    assert "cc=bbr" in text
    assert "fingerprint=deadbeefcafe" in text
    assert "STARTUP" in text


def test_fail_filters_recent_by_flow():
    check = Checker()
    check.note(0.1, "cc.state", 0, to="A")
    check.note(0.2, "cc.state", 1, to="B")
    check.note(0.3, "link.drop", None)
    with pytest.raises(InvariantViolation) as excinfo:
        check.fail("cc.law", "boom", time=0.4, flow_id=1, cc="bbr")
    recent = excinfo.value.recent
    assert (0.2, "cc.state", 1, {"to": "B"}) in recent
    assert (0.3, "link.drop", None, {}) in recent  # Flow-less kept.
    assert all(event[2] in (None, 1) for event in recent)


# -- seeded defects trip the sanitizer end-to-end --------------------------


class LeakyLink(Link):
    """A broken bottleneck that under-counts one byte per drop."""

    def _record_drop(self, packet):
        super()._record_drop(packet)
        self.stats.dropped_bytes -= 1  # The seeded accounting leak.


def test_leaky_link_trips_conservation(monkeypatch):
    monkeypatch.setattr("repro.sim.network.Link", LeakyLink)
    link = small_link(bdp=0.5)  # Shallow buffer: CUBIC must drop.
    with pytest.raises(InvariantViolation) as excinfo:
        run_dumbbell(
            link,
            [FlowSpec(cc="cubic"), FlowSpec(cc="cubic")],
            duration=10.0,
            check=Checker(),
        )
    exc = excinfo.value
    assert exc.check == "link.conservation"
    assert exc.time is not None and exc.time >= 0


class BrokenBBR(BBRv1):
    """A BBR adapter seeded with an illegal phase transition."""

    name = "bbr"  # Held to the BBRv1 law tables by the sanitizer.

    def on_ack(self, sample):
        super().on_ack(sample)
        if not getattr(self, "_sabotaged", False):
            self._sabotaged = True
            # PROBE_BW -> DRAIN never happens in BBRv1.
            self.emit_state(
                sample.now, bbr_laws.PROBE_BW, bbr_laws.DRAIN
            )


def test_broken_bbr_trips_transition_check():
    register("bbrbroken")(BrokenBBR)
    try:
        with pytest.raises(InvariantViolation) as excinfo:
            run_dumbbell(
                small_link(),
                [FlowSpec(cc="bbrbroken")],
                duration=5.0,
                check=Checker(),
            )
    finally:
        _REGISTRY.pop("bbrbroken", None)
    exc = excinfo.value
    assert exc.check == "cc.transition"
    assert exc.cc == "bbr"
    assert exc.flow_id == 0
    assert "PROBE_BW -> DRAIN" in exc.message


# -- clean runs under the sanitizer ----------------------------------------


def test_packet_run_is_clean_and_identical_under_checks():
    link = small_link()
    mix = [("cubic", 1), ("bbr", 1)]
    with use(None):
        plain = run_mix(link, mix, duration=8.0, backend="packet")
    check = Checker()
    with use(check):
        checked = run_mix(link, mix, duration=8.0, backend="packet")
    assert check.checks_run > 0
    assert checked == plain


def test_fluid_run_is_clean_and_identical_under_checks():
    link = small_link(mbps=50)
    mix = [("cubic", 2), ("bbr", 2), ("bbr2", 1)]
    with use(None):
        plain = run_mix(link, mix, duration=20.0, backend="fluid")
    check = Checker()
    with use(check):
        checked = run_mix(link, mix, duration=20.0, backend="fluid")
    assert check.checks_run > 0
    assert checked == plain


def test_run_fluid_explicit_checker_is_clean():
    check = Checker()
    result = run_fluid(
        small_link(mbps=50),
        [FluidSpec(cc=cc) for cc in ("bbr", "bbr2", "cubic", "reno")],
        duration=15.0,
        check=check,
    )
    assert check.checks_run > 0
    assert len(result.flows) == 4


def test_run_mix_sets_scenario_context():
    check = Checker()
    with use(check):
        run_mix(
            small_link(),
            [("cubic", 1)],
            duration=4.0,
            backend="packet",
            seed=7,
        )
    assert check.context["backend"] == "packet"
    assert check.context["seed"] == 7
    assert check.context["duration"] == 4.0


def test_engine_run_attaches_fingerprint():
    from repro.exec import Engine, ScenarioPoint

    point = ScenarioPoint(
        link=small_link(),
        mix=(("cubic", 1),),
        duration=4.0,
        backend="fluid",
    )
    check = Checker()
    with use(check):
        Engine(jobs=1).run_points([point])
    assert check.context["fingerprint"] == point.fingerprint()
