"""The §4.3 utility game plumbing (distribution_utility_fn)."""

import pytest

from repro.core.game import ThroughputTable
from repro.experiments.runner import (
    distribution_throughput_fn,
    distribution_utility_fn,
)
from repro.util.config import LinkConfig


def link():
    return LinkConfig.from_mbps_ms(100, 40, 3)


def test_zero_weight_equals_throughput_game():
    n = 4
    kwargs = dict(duration=40, backend="fluid", seed=6)
    fn_t = distribution_throughput_fn(link(), n, **kwargs)
    fn_u = distribution_utility_fn(link(), n, delay_weight=0.0, **kwargs)
    for k in (0, 2, 4):
        assert fn_t(k) == fn_u(k)


def test_delay_penalty_shared_between_classes():
    """The penalty subtracts equally from both CCAs, so the *difference*
    of utilities at any distribution equals the throughput difference."""
    n = 4
    kwargs = dict(duration=40, backend="fluid", seed=6)
    fn_t = distribution_throughput_fn(link(), n, **kwargs)
    fn_u = distribution_utility_fn(
        link(), n, delay_weight=5.0, **kwargs
    )
    for k in (1, 2, 3):
        ta, tb = fn_t(k)
        ua, ub = fn_u(k)
        assert (ub - ua) == pytest.approx(tb - ta, rel=1e-9)
        assert ua < ta and ub < tb  # Penalty actually applied.


def test_weight_validation():
    with pytest.raises(ValueError):
        distribution_utility_fn(link(), 4, delay_weight=-1.0)


def test_bounds_checked():
    fn = distribution_utility_fn(
        link(), 4, delay_weight=1.0, duration=20, backend="fluid"
    )
    with pytest.raises(ValueError):
        fn(5)


def test_utility_game_feeds_throughput_table():
    n = 4
    fn = distribution_utility_fn(
        link(), n, delay_weight=2.0, duration=60, backend="fluid", seed=1
    )
    table = ThroughputTable.from_function(n, fn)
    # The machinery is payoff-agnostic: NE enumeration just works.
    equilibria = table.nash_equilibria(tolerance=0.05 * link().capacity / n)
    assert equilibria
