"""Controller registry and base-class behaviour."""

import pytest

from repro.cc import available_algorithms, make_controller
from repro.cc.base import CongestionControl, register


def test_all_paper_algorithms_registered():
    algos = available_algorithms()
    for name in ("reno", "cubic", "bbr", "bbr2", "copa", "vivace"):
        assert name in algos


def test_make_controller_case_insensitive():
    assert make_controller("BBR").name == "bbr"
    assert make_controller("Cubic").name == "cubic"


def test_make_controller_passes_kwargs():
    cc = make_controller("cubic", mss=576)
    assert cc.mss == 576


def test_unknown_name_raises_with_choices():
    with pytest.raises(KeyError) as exc:
        make_controller("hybla")
    assert "hybla" in str(exc.value)
    assert "cubic" in str(exc.value)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):

        @register("cubic")
        class Fake(CongestionControl):  # pragma: no cover
            def on_ack(self, sample):
                pass

            def on_loss(self, event):
                pass


def test_initial_window_is_ten_segments():
    cc = make_controller("reno", mss=1000)
    assert cc.cwnd == 10_000


def test_clamp_cwnd_enforces_floor():
    cc = make_controller("reno", mss=1000)
    cc.cwnd = 10.0
    cc.clamp_cwnd()
    assert cc.cwnd == 2000


def test_invalid_mss_rejected():
    with pytest.raises(ValueError):
        make_controller("reno", mss=0)


def test_loss_based_flags_match_paper():
    # Assumption 4: BBRv1 is loss-agnostic; BBRv2 and CUBIC are not.
    assert make_controller("bbr").loss_based is False
    assert make_controller("vivace").loss_based is False
    assert make_controller("cubic").loss_based is True
    assert make_controller("bbr2").loss_based is True
    assert make_controller("copa").loss_based is True
