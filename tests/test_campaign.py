"""repro.campaign: spec parsing, expansion, journal, resume, fig9 parity."""

import filecmp
import json

import pytest

from repro.campaign import (
    CampaignError,
    Journal,
    JournalError,
    SpecError,
    execute_units,
    expand_axes,
    expand_units,
    fig9_campaign,
    load_campaign,
    load_spec,
    parse_mix,
    parse_spec,
    run_campaign,
)
from repro.exec import Engine, ResultCache

BASE = {
    "name": "t",
    "link": {"bandwidth_mbps": 20.0, "rtt_ms": 20.0, "buffer_bdp": 1.0},
    "defaults": {
        "duration": 5.0,
        "backend": "fluid",
        "mix": "cubic:1,bbr:1",
    },
    "axes": [{"name": "buffer_bdp", "values": [1, 2, 3]}],
}


def _spec(**overrides):
    data = json.loads(json.dumps(BASE))  # Deep copy.
    data.update(overrides)
    return parse_spec(data)


# -- spec parsing ------------------------------------------------------------


def test_parse_happy_path():
    spec = _spec()
    assert spec.name == "t"
    assert spec.link.capacity_mbps == pytest.approx(20.0)
    assert spec.mix == (("cubic", 1), ("bbr", 1))
    assert spec.expand == "grid"
    assert [a.name for a in spec.axes] == ["buffer_bdp"]
    assert spec.stages[0].kind == "sweep"
    # Default metrics: per-CCA throughput for every mix CCA + scalars.
    assert spec.metrics == (
        "per_flow_mbps:cubic",
        "per_flow_mbps:bbr",
        "queuing_delay_ms",
        "drop_rate",
    )


def test_parse_mix_forms_agree():
    assert parse_mix("cubic:3, bbr:2", "t") == (("cubic", 3), ("bbr", 2))
    assert parse_mix([["CUBIC", 3], ["bbr", 2]], "t") == (
        ("cubic", 3),
        ("bbr", 2),
    )
    assert parse_mix("cubic:3,bbr:0", "t") == (("cubic", 3),)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.pop("axes"), "no axes"),
        (lambda d: d.update(axes=[]), "no axes"),
        (
            lambda d: d.update(
                axes=[{"name": "bananas", "values": [1]}]
            ),
            "not a sweepable parameter",
        ),
        (
            lambda d: d["defaults"].update(mix="quic:5"),
            "unknown congestion control",
        ),
        (
            lambda d: d["defaults"].update(mix="cubic:0"),
            "no positive flow counts",
        ),
        (lambda d: d.update(expand="cross"), "expand must be one of"),
        (
            lambda d: d.update(
                axes=[
                    {"name": "buffer_bdp", "values": [1, 2]},
                    {"name": "rtt_ms", "values": [10.0]},
                ],
                expand="zip",
            ),
            "equal-length axes",
        ),
        (
            lambda d: d.update(
                stages=[{"type": "adaptive", "flows": 1}]
            ),
            "flows >= 2",
        ),
        (
            lambda d: d.update(
                axes=[{"name": "mix", "values": ["cubic:1,bbr:1"]}],
                stages=[{"type": "adaptive", "flows": 4}],
            ),
            "remove the mix axis",
        ),
        (
            lambda d: (
                d["defaults"].pop("mix"),
                d.update(stages=[{"type": "sweep"}]),
            ),
            "need a flow mix",
        ),
        (
            lambda d: d.update(metrics={"columns": ["per_flow_mbps"]}),
            "needs a CCA argument",
        ),
        (
            lambda d: d.update(metrics={"columns": ["goodput:bbr"]}),
            "unknown metric",
        ),
        (
            lambda d: d.update(output={"csv": "a/b.csv"}),
            "bare file name",
        ),
        (lambda d: d.pop("name"), "'name' is required"),
        (
            lambda d: d["defaults"].update(backend="ns3"),
            "backend must be one of",
        ),
    ],
)
def test_parse_rejects_with_actionable_message(mutate, message):
    data = json.loads(json.dumps(BASE))
    mutate(data)
    with pytest.raises(SpecError, match=message):
        parse_spec(data)


def test_spec_error_messages_name_the_source():
    with pytest.raises(SpecError, match="myfile.toml"):
        parse_spec({"name": "x"}, source="myfile.toml")


def test_toml_and_json_specs_agree(tmp_path):
    toml = tmp_path / "s.toml"
    toml.write_text(
        'name = "t"\n'
        "[link]\n"
        "bandwidth_mbps = 20.0\nrtt_ms = 20.0\nbuffer_bdp = 1.0\n"
        "[defaults]\n"
        'duration = 5.0\nbackend = "fluid"\nmix = "cubic:1,bbr:1"\n'
        "[[axes]]\n"
        'name = "buffer_bdp"\nvalues = [1, 2, 3]\n'
    )
    js = tmp_path / "s.json"
    js.write_text(json.dumps(BASE))
    assert load_spec(toml).fingerprint() == load_spec(js).fingerprint()


def test_to_dict_round_trips():
    spec = _spec()
    again = parse_spec(spec.to_dict())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()


def test_load_spec_rejects_bad_suffix_and_bad_toml(tmp_path):
    with pytest.raises(SpecError, match="unsupported spec format"):
        load_spec(tmp_path / "s.yaml")
    bad = tmp_path / "s.toml"
    bad.write_text("name = [unclosed\n")
    with pytest.raises(SpecError, match="invalid TOML"):
        load_spec(bad)


# -- expansion ---------------------------------------------------------------


def test_grid_expansion_order_rightmost_fastest():
    spec = _spec(
        axes=[
            {"name": "rtt_ms", "values": [10.0, 20.0]},
            {"name": "buffer_bdp", "values": [1, 2, 3]},
        ]
    )
    combos = expand_axes(spec)
    assert len(combos) == 6
    assert combos[0] == (("rtt_ms", 10.0), ("buffer_bdp", 1))
    assert combos[1] == (("rtt_ms", 10.0), ("buffer_bdp", 2))
    assert combos[3] == (("rtt_ms", 20.0), ("buffer_bdp", 1))


def test_zip_expansion_pairs_elementwise():
    spec = _spec(
        axes=[
            {"name": "rtt_ms", "values": [10.0, 20.0]},
            {"name": "buffer_bdp", "values": [1, 2]},
        ],
        expand="zip",
    )
    combos = expand_axes(spec)
    assert combos == [
        (("rtt_ms", 10.0), ("buffer_bdp", 1)),
        (("rtt_ms", 20.0), ("buffer_bdp", 2)),
    ]


def test_buffer_only_sweep_preserves_base_link_identity():
    spec = _spec()
    units = expand_units(spec)
    # Exactly what the hand-coded figure loops build with
    # base.with_buffer_bdp(depth): capacity/rtt floats untouched.
    assert units[0].link == spec.link.with_buffer_bdp(1)
    assert units[0].to_point().fingerprint() != (
        units[1].to_point().fingerprint()
    )


def test_adaptive_stage_expands_searches():
    spec = _spec(
        stages=[{"type": "adaptive", "flows": 4, "searches": 3}],
    )
    units = expand_units(spec)
    assert len(units) == 9  # 3 buffers x 3 searches.
    assert [u.search for u in units[:3]] == [0, 1, 2]
    assert all(u.kind == "adaptive" for u in units)
    assert units[0].unit_id() != units[1].unit_id()


def test_unit_ids_stable_across_expansions():
    a = [u.unit_id() for u in expand_units(_spec())]
    b = [u.unit_id() for u in expand_units(_spec())]
    assert a == b


def test_mix_axis_sweeps_flow_mixes():
    spec = _spec(
        defaults={"duration": 5.0, "backend": "fluid"},
        axes=[
            {"name": "mix", "values": ["cubic:2", "cubic:1,bbr:1"]},
        ],
    )
    units = expand_units(spec)
    assert [u.mix for u in units] == [
        (("cubic", 2),),
        (("cubic", 1), ("bbr", 1)),
    ]
    assert units[0].combo_dict()["mix"] == "cubic:2"


# -- journal -----------------------------------------------------------------


def test_journal_round_trip(tmp_path):
    from repro.campaign import JournalRecord

    journal = Journal.in_dir(tmp_path)
    journal.create("t", "f" * 64)
    journal.append(
        JournalRecord(
            unit_id="u0",
            index=0,
            stage="s",
            rows=({"buffer_bdp": 1, "x": 0.5},),
            wall_s=1.5,
        )
    )
    header, records = journal.load(expect_fingerprint="f" * 64)
    assert header["name"] == "t"
    assert records[0].rows[0] == {"buffer_bdp": 1, "x": 0.5}
    assert list(records[0].rows[0]) == ["buffer_bdp", "x"]  # Order kept.


def test_journal_tolerates_torn_trailing_line(tmp_path):
    from repro.campaign import JournalRecord

    journal = Journal.in_dir(tmp_path)
    journal.create("t", "f" * 64)
    journal.append(
        JournalRecord(
            unit_id="u0", index=0, stage="s", rows=({},), wall_s=0.0
        )
    )
    with open(journal.path, "a") as handle:
        handle.write('{"kind": "unit", "unit": "u1", "index"')  # Torn.
    _header, records = journal.load()
    assert [r.unit_id for r in records] == ["u0"]


def test_journal_rejects_mid_file_corruption(tmp_path):
    journal = Journal.in_dir(tmp_path)
    journal.create("t", "f" * 64)
    with open(journal.path, "a") as handle:
        handle.write("garbage\n")
        handle.write(
            '{"kind":"unit","unit":"u1","index":1,"stage":"s",'
            '"rows":[],"wall_s":0.0}\n'
        )
    with pytest.raises(JournalError, match="corrupt journal line"):
        journal.load()


def test_journal_rejects_wrong_fingerprint(tmp_path):
    journal = Journal.in_dir(tmp_path)
    journal.create("t", "a" * 64)
    with pytest.raises(JournalError, match="different campaign"):
        journal.load(expect_fingerprint="b" * 64)


def test_journal_missing_file(tmp_path):
    with pytest.raises(JournalError, match="no checkpoint journal"):
        Journal.in_dir(tmp_path).load()


# -- end-to-end campaigns ----------------------------------------------------


def _engine(tmp_path):
    return Engine(cache=ResultCache(tmp_path / "cache"))


def test_sweep_campaign_end_to_end(tmp_path):
    spec = _spec()
    summary = run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))
    assert not summary.interrupted
    assert summary.total_units == 3
    assert summary.executed == 3
    assert summary.rows == 3
    csv_text = (tmp_path / "out" / "results.csv").read_text()
    lines = csv_text.strip().splitlines()
    assert lines[0] == (
        "buffer_bdp,per_flow_mbps:cubic,per_flow_mbps:bbr,"
        "queuing_delay_ms,drop_rate"
    )
    assert len(lines) == 4
    manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
    assert manifest["schema"] == "repro-campaign/1"
    assert manifest["fingerprint"] == spec.fingerprint()
    assert manifest["executed"] == 3


def test_interrupt_resume_zero_resim_identical_csv(tmp_path):
    spec = _spec()

    # Reference: uninterrupted run with its own cache.
    ref_engine = Engine(cache=ResultCache(tmp_path / "cache-a"))
    run_campaign(spec, tmp_path / "ref", engine=ref_engine)

    # Interrupted run: 2 of 3 units, then resume with a fresh engine
    # sharing the same (second) cache.
    cache_b = tmp_path / "cache-b"
    first = Engine(cache=ResultCache(cache_b))
    summary = run_campaign(
        spec, tmp_path / "out", engine=first, stop_after=2
    )
    assert summary.interrupted
    assert summary.executed == 2
    assert summary.csv_path is None
    assert first.simulated == 2

    second = Engine(cache=ResultCache(cache_b))
    resumed = run_campaign(
        spec, tmp_path / "out", engine=second, resume=True
    )
    assert not resumed.interrupted
    assert resumed.from_journal == 2
    assert resumed.executed == 1
    # Zero repeat simulations: only the one missing unit ran.
    assert second.simulated == 1
    assert second.hits == 0
    assert filecmp.cmp(
        tmp_path / "ref" / "results.csv",
        tmp_path / "out" / "results.csv",
        shallow=False,
    )


def test_resume_killed_mid_unit_hits_cache(tmp_path):
    """A unit that simulated but never journaled resolves from cache."""
    spec = _spec()
    cache = ResultCache(tmp_path / "cache")
    first = Engine(cache=cache)
    run_campaign(spec, tmp_path / "out", engine=first, stop_after=2)
    # Simulate a crash after the 3rd unit's cache write but before its
    # journal record: warm the cache with the missing point.
    missing = expand_units(spec)[2]
    Engine(cache=cache).run_points([missing.to_point()])

    second = Engine(cache=cache)
    resumed = run_campaign(
        spec, tmp_path / "out", engine=second, resume=True
    )
    assert resumed.executed == 1
    assert second.simulated == 0  # Answered from cache.
    assert second.hits == 1


def test_fresh_run_refuses_existing_journal(tmp_path):
    spec = _spec()
    run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))
    with pytest.raises(CampaignError, match="campaign resume"):
        run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))


def test_resume_rejects_changed_spec(tmp_path):
    run_campaign(_spec(), tmp_path / "out", engine=_engine(tmp_path))
    changed = _spec(name="other")
    with pytest.raises(JournalError, match="different campaign"):
        run_campaign(
            changed, tmp_path / "out", engine=_engine(tmp_path), resume=True
        )


def test_load_campaign_round_trip(tmp_path):
    spec = _spec()
    run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))
    loaded = load_campaign(tmp_path / "out")
    assert loaded == spec
    assert loaded.fingerprint() == spec.fingerprint()


def test_load_campaign_missing_dir(tmp_path):
    with pytest.raises(CampaignError, match="not a campaign directory"):
        load_campaign(tmp_path)


# -- adaptive stages ---------------------------------------------------------


def test_adaptive_stage_matches_direct_bisection(tmp_path):
    """A campaign NE unit equals hand-wiring bisect_nash (fig9's loop)."""
    from repro.core.game import bisect_nash
    from repro.experiments.runner import distribution_throughput_fn

    spec = _spec(
        defaults={"duration": 5.0, "backend": "fluid"},
        axes=[{"name": "buffer_bdp", "values": [2]}],
        stages=[{"type": "adaptive", "flows": 4, "searches": 1}],
    )
    engine = _engine(tmp_path)
    outcomes, interrupted = execute_units(
        spec, expand_units(spec), engine=engine
    )
    assert not interrupted

    fn = distribution_throughput_fn(
        spec.link.with_buffer_bdp(2),
        4,
        duration=5.0,
        backend="fluid",
        seed=0,
    )
    expected, _cache = bisect_nash(4, fn)
    got = [row["ne_challenger"] for row in outcomes[0].rows]
    assert got == expected
    assert all(
        row["ne_incumbent"] == 4 - row["ne_challenger"]
        for row in outcomes[0].rows
    )


def test_adaptive_campaign_shares_cache_with_figure_path(tmp_path):
    """Campaign units and the raw fig9-style loop hit the same entries."""
    from repro.core.game import bisect_nash
    from repro.experiments.runner import distribution_throughput_fn

    spec = _spec(
        defaults={"duration": 5.0, "backend": "fluid"},
        axes=[{"name": "buffer_bdp", "values": [2]}],
        stages=[{"type": "adaptive", "flows": 4, "searches": 2}],
    )
    cache = ResultCache(tmp_path / "cache")

    # Warm the cache exactly the way figure9 would.
    warm = Engine(cache=cache)
    for search in range(2):
        fn = distribution_throughput_fn(
            spec.link.with_buffer_bdp(2),
            4,
            duration=5.0,
            backend="fluid",
            seed=0 + 7919 * search,
            engine=warm,
        )
        bisect_nash(4, fn)
    assert warm.simulated > 0

    cold = Engine(cache=cache)
    execute_units(spec, expand_units(spec), engine=cold)
    assert cold.simulated == 0  # Every point answered from cache.
    assert cold.hits == warm.simulated


def test_fig9_campaign_matches_bundled_spec():
    from repro.campaign import bundled_campaign_dir

    bundled = load_spec(bundled_campaign_dir() / "fig9-ne-quick.toml")
    assert bundled.fingerprint() == fig9_campaign().fingerprint()
    assert bundled == fig9_campaign()


def test_fig9_campaign_full_scale_shape():
    spec = fig9_campaign(scale="full")
    stage = spec.stages[0]
    assert stage.flows == 50
    assert stage.searches == 10
    axis = spec.axis("buffer_bdp")
    assert axis is not None and len(axis.values) == 51
    assert len(expand_units(spec)) == 510


def test_fig9_campaign_rejects_bad_scale():
    with pytest.raises(ValueError, match="scale"):
        fig9_campaign(scale="paper")


def test_bundled_specs_all_validate():
    from repro.campaign import list_bundled_campaigns

    specs = list_bundled_campaigns()
    assert len(specs) >= 2
    for path in specs:
        spec = load_spec(path)
        assert expand_units(spec)


# -- scenario axes (aqm / ecn / capacity_trace) ------------------------------


def test_aqm_axis_resolves_unit_links():
    spec = _spec(
        axes=[{"name": "aqm", "values": ["droptail", "red", "codel"]}],
    )
    units = expand_units(spec)
    assert [u.link.scenario_family for u in units] == [
        "droptail",
        "red",
        "codel",
    ]
    assert [u.combo_dict()["aqm"] for u in units] == [
        "droptail",
        "red",
        "codel",
    ]
    # The drop-tail row keeps the base link's exact identity (and
    # therefore its historical cache fingerprint).
    assert units[0].link == spec.link


def test_ecn_axis_toggles_marking():
    spec = _spec(
        axes=[
            {"name": "aqm", "values": ["red"]},
            {"name": "ecn", "values": [False, True]},
        ],
    )
    units = expand_units(spec)
    assert [u.link.aqm.ecn for u in units] == [False, True]
    assert units[0].unit_id() != units[1].unit_id()


def test_capacity_trace_axis_resolves_unit_links():
    spec = _spec(
        axes=[
            {"name": "capacity_trace", "values": ["constant", "steps:2@0.5"]},
        ],
    )
    units = expand_units(spec)
    assert units[0].link.capacity_trace.is_constant
    assert not units[1].link.capacity_trace.is_constant
    assert units[0].combo_dict()["capacity_trace"] == "constant"


def test_scenario_axes_compose_with_buffer_sweep():
    spec = _spec(
        axes=[
            {"name": "aqm", "values": ["red"]},
            {"name": "buffer_bdp", "values": [1, 2]},
        ],
    )
    units = expand_units(spec)
    assert all(u.link.scenario_family == "red" for u in units)
    assert [u.link.buffer_bdp for u in units] == [1, 2]


def test_bad_aqm_axis_value_is_a_spec_error():
    with pytest.raises(SpecError, match="aqm must be one of"):
        _spec(axes=[{"name": "aqm", "values": ["pie"]}])
    with pytest.raises(SpecError, match="capacity trace"):
        _spec(axes=[{"name": "capacity_trace", "values": ["ramp:1"]}])
    with pytest.raises(SpecError, match="expected a boolean"):
        _spec(axes=[{"name": "ecn", "values": [1]}])


def test_ecn_axis_without_aqm_is_a_spec_error():
    spec = _spec(axes=[{"name": "ecn", "values": [True]}])
    with pytest.raises(SpecError, match="ECN marking requires an AQM"):
        expand_units(spec)


# -- model-error report ------------------------------------------------------


def _report_spec(**overrides):
    data = json.loads(json.dumps(BASE))
    data["defaults"]["duration"] = 4.0
    data["axes"] = [
        {"name": "aqm", "values": ["droptail", "red"]},
        {"name": "backend", "values": ["fluid", "fluid-vec"]},
    ]
    data["metrics"] = {
        "columns": [
            "aggregate_mbps:cubic",
            "aggregate_mbps:bbr",
            "drop_rate",
        ]
    }
    data.update(overrides)
    return parse_spec(data)


def test_model_error_report_scores_backend_pairs(tmp_path):
    from repro.campaign import model_error_report

    spec = _report_spec()
    run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))
    report = model_error_report(
        tmp_path / "out", reference="fluid", share_cc="bbr"
    )
    # fluid-vec is bitwise-identical to fluid, so every paired row
    # scores exactly zero model error.
    assert len(report.rows) == 2  # One non-reference row per aqm family.
    assert all(row.error == 0.0 for row in report.rows)
    assert sorted(report.families()) == ["droptail", "red"]
    assert report.csv_path.exists()
    text = report.csv_path.read_text()
    assert text.splitlines()[0] == (
        "aqm,backend,bbr_share,bbr_share_ref,model_error"
    )
    assert "model error" in report.render()


def test_model_error_report_requires_compare_axis(tmp_path):
    spec = _spec()  # buffer_bdp sweep only, no backend axis.
    run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))
    with pytest.raises(CampaignError, match="does not sweep"):
        from repro.campaign import model_error_report

        model_error_report(tmp_path / "out")


def test_model_error_report_requires_share_metric(tmp_path):
    spec = _report_spec(
        metrics={"columns": ["per_flow_mbps:bbr", "drop_rate"]},
    )
    run_campaign(spec, tmp_path / "out", engine=_engine(tmp_path))
    with pytest.raises(CampaignError, match="aggregate_mbps:bbr"):
        from repro.campaign import model_error_report

        model_error_report(tmp_path / "out", reference="fluid")
