"""Reno AIMD behaviour."""

import pytest

from repro.cc.reno import Reno


def test_slow_start_doubles_per_rtt(driver_factory):
    cc = Reno(mss=1000)
    d = driver_factory(cc, rate=1e6, rtt=0.04)
    start = cc.cwnd
    # One window's worth of ACKs ≈ one RTT of slow start.
    d.acks(int(start / 1000))
    assert cc.cwnd == pytest.approx(2 * start)


def test_congestion_avoidance_one_mss_per_rtt(driver_factory):
    cc = Reno(mss=1000)
    cc.ssthresh = cc.cwnd  # Force congestion avoidance.
    d = driver_factory(cc, rate=1e6, rtt=0.04)
    start = cc.cwnd
    d.acks(int(start / 1000))
    assert cc.cwnd == pytest.approx(start + 1000, rel=0.01)


def test_loss_halves_window(driver_factory):
    cc = Reno(mss=1000)
    d = driver_factory(cc)
    d.acks(20)
    before = cc.cwnd
    d.lose()
    assert cc.cwnd == pytest.approx(before / 2)
    assert cc.ssthresh == cc.cwnd


def test_losses_within_one_rtt_count_once(driver_factory):
    cc = Reno(mss=1000)
    d = driver_factory(cc, rtt=0.04)
    d.acks(50)
    before = cc.cwnd
    d.lose()
    d.lose()  # Same congestion event (no time has passed).
    assert cc.cwnd == pytest.approx(before / 2)


def test_separate_congestion_events_compound(driver_factory):
    cc = Reno(mss=1000)
    d = driver_factory(cc, rate=1e7, rtt=0.01)
    d.acks(100)
    before = cc.cwnd
    d.lose()
    d.run_for(0.1)  # Far more than one RTT.
    d.lose()
    assert cc.cwnd < before / 2


def test_window_never_below_floor(driver_factory):
    cc = Reno(mss=1000)
    d = driver_factory(cc)
    for _ in range(20):
        d.lose()
        d.run_for(0.1)
    assert cc.cwnd >= cc.min_cwnd


def test_custom_beta():
    cc = Reno(mss=1000, beta=0.8)
    cc.cwnd = 100_000
    from repro.cc.signals import LossEvent

    cc.on_loss(LossEvent(lost_bytes=1000, in_flight=0, now=1.0))
    assert cc.cwnd == pytest.approx(80_000)


def test_invalid_beta_rejected():
    with pytest.raises(ValueError):
        Reno(beta=0.0)
    with pytest.raises(ValueError):
        Reno(beta=1.0)
