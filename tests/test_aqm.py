"""RED active queue management."""

import pytest

from repro.sim.aqm import RED, REDConfig
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


class TestREDConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            REDConfig(min_threshold=10, max_threshold=10)
        with pytest.raises(ValueError):
            REDConfig(min_threshold=0, max_threshold=10)

    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            REDConfig(1, 2, max_p=0)
        with pytest.raises(ValueError):
            REDConfig(1, 2, weight=1.5)

    def test_for_buffer_rule_of_thumb(self):
        cfg = REDConfig.for_buffer(600_000)
        assert cfg.min_threshold == pytest.approx(100_000)
        assert cfg.max_threshold == pytest.approx(300_000)


class TestREDBehaviour:
    def make(self, **kwargs):
        defaults = dict(
            min_threshold=10_000,
            max_threshold=30_000,
            max_p=0.1,
            weight=0.5,  # Fast-moving average for unit tests.
            seed=1,
        )
        defaults.update(kwargs)
        return RED(REDConfig(**defaults))

    def test_no_drops_below_min_threshold(self):
        red = self.make()
        assert not any(red.should_drop(5_000) for _ in range(100))

    def test_always_drops_above_max_threshold(self):
        red = self.make()
        for _ in range(20):
            red.should_drop(100_000)  # Pump the average up.
        assert red.should_drop(100_000)

    def test_probabilistic_region_drops_some(self):
        red = self.make()
        decisions = [red.should_drop(20_000) for _ in range(500)]
        assert any(decisions)
        assert not all(decisions)

    def test_average_is_smoothed(self):
        red = self.make(weight=0.002)
        red.should_drop(1_000_000)
        assert red.avg < 10_000  # One sample barely moves the EWMA.

    def test_deterministic_per_seed(self):
        a = self.make(seed=7)
        b = self.make(seed=7)
        queue = [15_000, 20_000, 25_000] * 50
        assert [a.should_drop(q) for q in queue] == [
            b.should_drop(q) for q in queue
        ]


class TestREDEndToEnd:
    def test_red_keeps_queue_below_droptail(self):
        link = LinkConfig.from_mbps_ms(10, 20, 8)
        flows = [FlowSpec("cubic"), FlowSpec("cubic")]
        plain = run_dumbbell(link, flows, duration=30, warmup=5)
        red = run_dumbbell(
            link,
            flows,
            duration=30,
            warmup=5,
            red=REDConfig.for_buffer(link.buffer_bytes),
        )
        assert red.mean_queuing_delay < plain.mean_queuing_delay
        # Early drops happen while the physical buffer still has room.
        assert red.drop_rate > 0

    def test_red_sustains_utilization(self):
        link = LinkConfig.from_mbps_ms(10, 20, 8)
        result = run_dumbbell(
            link,
            [FlowSpec("cubic"), FlowSpec("cubic")],
            duration=30,
            warmup=5,
            red=REDConfig.for_buffer(link.buffer_bytes),
        )
        total = result.aggregate_throughput() * 8 / 1e6
        assert total > 8.0

    def test_bbr_vs_cubic_under_red(self):
        """BBR (loss-agnostic) shrugs off RED's early drops while CUBIC
        backs off on each — BBR's edge grows under RED."""
        link = LinkConfig.from_mbps_ms(10, 20, 8)
        flows = [FlowSpec("cubic"), FlowSpec("bbr")]
        plain = run_dumbbell(link, flows, duration=60, warmup=10)
        red = run_dumbbell(
            link,
            flows,
            duration=60,
            warmup=10,
            red=REDConfig.for_buffer(link.buffer_bytes),
        )
        bbr_share_plain = plain.flows[1].throughput
        bbr_share_red = red.flows[1].throughput
        assert bbr_share_red > bbr_share_plain
