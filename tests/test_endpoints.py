"""Sender/receiver endpoints: ACK processing, loss detection, RTO."""

import pytest

from repro.cc.base import CongestionControl
from repro.sim.endpoints import REORDER_THRESHOLD, Receiver, Sender
from repro.sim.engine import EventLoop
from repro.sim.link import DelayLine
from repro.sim.packet import Ack
from repro.sim.stats import FlowStats


class RecordingCC(CongestionControl):
    """A fixed-window controller that records everything it is told."""

    name = "recording"

    def __init__(self, mss=1000, cwnd_segments=4):
        super().__init__(mss=mss)
        self.cwnd = cwnd_segments * mss
        self.samples = []
        self.losses = []

    def on_ack(self, sample):
        self.samples.append(sample)

    def on_loss(self, event):
        self.losses.append(event)


def build_path(loop, cc, rtt=0.02):
    """Sender → echo "network" (delay line) → receiver → delayed ACKs."""
    stats = FlowStats(0)
    sent = []
    sender = Sender(
        loop=loop,
        flow_id=0,
        cc=cc,
        transmit=lambda p: sent.append(p) or data_path.send(p),
        stats=stats,
        start_time=0.0,
    )
    ack_path = DelayLine(loop, rtt / 2, sender.on_ack)
    receiver = Receiver(loop, stats, ack_path.send)
    data_path = DelayLine(loop, rtt / 2, receiver.on_packet)
    return sender, receiver, stats, sent


def test_sender_respects_cwnd():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=4)
    sender, _recv, _stats, sent = build_path(loop, cc)
    loop.run_until(0.001)
    assert len(sent) == 4  # cwnd of 4 packets, nothing ACKed yet.


def test_ack_clocking_sustains_flow():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=4)
    sender, _recv, stats, sent = build_path(loop, cc, rtt=0.02)
    loop.run_until(1.0)
    # 4 packets per 20 ms RTT for 1 s = ~200 packets.
    assert len(sent) == pytest.approx(200, rel=0.1)
    assert stats.delivered_bytes == pytest.approx(200 * 1000, rel=0.1)


def test_rtt_measured_correctly():
    loop = EventLoop()
    cc = RecordingCC()
    build_path(loop, cc, rtt=0.02)
    loop.run_until(0.5)
    assert cc.samples, "expected ACKs"
    assert cc.samples[-1].rtt == pytest.approx(0.02, abs=1e-6)


def test_delivery_rate_estimation_converges():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=8)
    build_path(loop, cc, rtt=0.02)
    loop.run_until(1.0)
    # 8 packets / 20 ms = 400 KB/s steady state.
    assert cc.samples[-1].delivery_rate == pytest.approx(400_000, rel=0.05)


def test_in_flight_never_negative_and_bounded():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=4)
    sender, *_ = build_path(loop, cc)
    loop.run_until(1.0)
    assert 0 <= sender.in_flight_bytes <= cc.cwnd


def test_gap_declares_loss():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=8)
    stats = FlowStats(0)
    sent = []
    sender = Sender(loop, 0, cc, lambda p: sent.append(p), stats, 0.0)
    loop.run_until(0.001)  # Window of packets sent.

    def ack_for(p, when):
        return Ack(
            flow_id=0,
            seq=p.seq,
            size=p.size,
            data_sent_time=p.sent_time,
            delivered_at_send=p.delivered_at_send,
            delivered_time_at_send=p.delivered_time_at_send,
            app_limited=False,
            recv_time=when,
        )

    # ACK everything except seq 0; the gap exceeds REORDER_THRESHOLD.
    loop.call_at(0.02, lambda: sender.on_ack(ack_for(sent[1], 0.02)))
    loop.call_at(0.021, lambda: sender.on_ack(ack_for(sent[2], 0.021)))
    loop.call_at(0.022, lambda: sender.on_ack(ack_for(sent[3], 0.022)))
    loop.call_at(0.023, lambda: sender.on_ack(ack_for(sent[4], 0.023)))
    loop.run_until(0.05)
    assert cc.losses, "gap should have been declared a loss"
    assert stats.lost_packets >= 1


def test_small_gaps_tolerated():
    """Gaps smaller than REORDER_THRESHOLD do not trigger losses."""
    assert REORDER_THRESHOLD == 3


def test_rto_fires_on_total_blackhole():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=4)
    stats = FlowStats(0)
    # transmit drops everything: no ACKs ever arrive.
    sender = Sender(loop, 0, cc, lambda p: None, stats, 0.0)
    loop.run_until(3.0)
    assert cc.losses, "RTO should have fired"
    assert sender.in_flight_bytes >= 0


def test_sender_restarts_after_rto():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=4)
    stats = FlowStats(0)
    sender = Sender(loop, 0, cc, lambda p: None, stats, 0.0)
    loop.run_until(5.0)
    # Keeps retrying: sent more than the initial window.
    assert stats.sent_packets > 4


def test_paced_sender_spreads_transmissions():
    loop = EventLoop()
    cc = RecordingCC(cwnd_segments=100)
    cc.pacing_rate = 100_000.0  # 100 packets/s at mss=1000.
    stats = FlowStats(0)
    times = []
    sender = Sender(
        loop, 0, cc, lambda p: times.append(loop.now), stats, 0.0
    )
    loop.run_until(0.1)
    # Pacing at 100 pkt/s over 100 ms → ~10 sends, not a window burst.
    assert 5 <= len(times) <= 15
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g >= 0.009 for g in gaps[1:])


def test_flow_start_time_respected():
    loop = EventLoop()
    cc = RecordingCC()
    stats = FlowStats(0)
    sent = []
    Sender(loop, 0, cc, sent.append, stats, start_time=1.0)
    loop.run_until(0.9)
    assert sent == []
    loop.run_until(1.1)
    assert sent
