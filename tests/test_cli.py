"""CLI subcommands (fast paths only; figures are covered by benchmarks)."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out
    assert "cubic" in out and "bbr" in out


def test_predict_two_flow(capsys):
    code = main(
        ["predict", "--mbps", "100", "--rtt-ms", "40", "--buffer-bdp", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2-flow model" in out
    assert "40.6%" in out  # Known value for this configuration.
    assert "ware" in out.lower()


def test_predict_multi_flow(capsys):
    code = main(["predict", "--cubic", "5", "--bbr", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "multi-flow model" in out
    assert "per-flow BBR in [" in out


def test_nash(capsys):
    code = main(["nash", "--flows", "50", "--buffer-bdp", "10"])
    assert code == 0
    out = capsys.readouterr().out
    assert "predicted NE" in out
    assert "CUBIC" in out


def test_simulate_fluid(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "bbr:1",
            "--mbps",
            "20",
            "--duration",
            "20",
            "--backend",
            "fluid",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cubic" in out and "bbr" in out
    assert "queuing delay" in out


def test_simulate_bad_mix(capsys):
    assert main(["simulate", "cubic-5"]) == 2


def test_figure_unknown_id(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_figure_fig6_renders_and_exports(tmp_path, capsys):
    code = main(["figure", "fig6", "--csv-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert (tmp_path / "fig6.csv").exists()


def test_figure_accepts_bare_number(capsys):
    assert main(["figure", "6"]) == 0


def test_validate_fluid(capsys):
    code = main(
        [
            "validate",
            "--mbps",
            "50",
            "--buffers",
            "2",
            "5",
            "--backend",
            "fluid",
            "--duration",
            "60",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "MAE" in out
    assert "wins" in out


def test_simulate_packet_backend(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "5",
            "--rtt-ms",
            "20",
            "--duration",
            "10",
            "--backend",
            "packet",
        ]
    )
    assert code == 0
    assert "cubic" in capsys.readouterr().out


def test_evolve(capsys):
    code = main(
        [
            "evolve",
            "--flows",
            "4",
            "--buffer-bdp",
            "3",
            "--duration",
            "40",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "best-response path" in out
    assert "converged mix" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_prints_loss_and_drop_stats(capsys):
    code = main(
        [
            "simulate",
            "cubic:2",
            "--mbps",
            "20",
            "--duration",
            "20",
            "--backend",
            "fluid",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "loss" in out
    assert "retx" in out
    assert "drop rate" in out
    assert "queuing delay" in out


def test_simulate_trace_out_and_report_round_trip(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    code = main(
        [
            "simulate",
            "cubic:1",
            "bbr:1",
            "--mbps",
            "20",
            "--duration",
            "30",
            "--backend",
            "fluid",
            "--trace-out",
            str(trace),
            "--profile",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "fluid.steps" in out
    assert trace.exists()
    manifest = tmp_path / "run.manifest.json"
    assert manifest.exists()

    # The trace must contain BBR phase transitions and drop counters.
    import json

    records = [json.loads(line) for line in trace.read_text().splitlines()]
    kinds = {r["kind"] for r in records}
    assert {"manifest", "sample", "event", "counter"} <= kinds
    states = [
        r
        for r in records
        if r["kind"] == "event" and r["name"] == "cc.state"
    ]
    assert any(r["fields"]["cc"] == "bbr" for r in states)
    counters = {
        r["name"]: r["value"] for r in records if r["kind"] == "counter"
    }
    assert counters.get("link.dropped_packets", 0) > 0

    code = main(["report", str(trace)])
    assert code == 0
    out = capsys.readouterr().out
    assert "phase dwell" in out
    assert "bbr" in out
    assert "PROBE_BW" in out


def test_report_missing_file(tmp_path, capsys):
    assert main(["report", str(tmp_path / "missing.jsonl")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_report_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["report", str(bad)]) == 2
    assert "malformed trace" in capsys.readouterr().err


def test_simulate_cache_dir_miss_then_hit(tmp_path, capsys):
    argv = [
        "simulate",
        "cubic:1",
        "bbr:1",
        "--mbps",
        "20",
        "--duration",
        "10",
        "--cache-dir",
        str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "cache: miss" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "cache: hit" in warm
    # The simulated throughput lines are identical on the warm run.
    sim = [l for l in cold.splitlines() if "Mbps/flow" in l]
    assert sim and sim == [l for l in warm.splitlines() if "Mbps/flow" in l]


def test_simulate_no_cache_with_cache_dir_is_rejected(tmp_path, capsys):
    argv = [
        "simulate",
        "cubic:1",
        "bbr:1",
        "--duration",
        "10",
        "--cache-dir",
        str(tmp_path),
        "--no-cache",
    ]
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "contradictory" in err
    assert len(err.strip().splitlines()) == 1  # One-line diagnostic.
    assert not any(tmp_path.glob("??/*.json"))


def test_no_cache_alone_still_works(capsys):
    argv = [
        "simulate",
        "cubic:1",
        "--mbps",
        "20",
        "--duration",
        "5",
        "--no-cache",
    ]
    assert main(argv) == 0
    assert "cache:" not in capsys.readouterr().out


def test_simulate_jobs_rejects_non_positive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "cubic:1", "--jobs", "0"])


def test_figure_exec_summary_and_cache(tmp_path, capsys):
    (tmp_path / "csv").mkdir()
    argv = [
        "figure",
        "6",
        "--scale",
        "quick",
        "--cache-dir",
        str(tmp_path),
        "--csv-dir",
        str(tmp_path / "csv"),
    ]
    # fig6 is model-only (no scenario points): no exec summary expected.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "exec:" not in out


SMOKE_SPEC = """\
name = "cli-smoke"
[link]
bandwidth_mbps = 20.0
rtt_ms = 20.0
buffer_bdp = 1.0
[defaults]
duration = 5.0
backend = "fluid"
mix = "cubic:1,bbr:1"
[[axes]]
name = "buffer_bdp"
values = [1, 2, 3]
"""


def _write_smoke_spec(tmp_path):
    spec = tmp_path / "smoke.toml"
    spec.write_text(SMOKE_SPEC)
    return spec


def test_campaign_validate_ok(tmp_path, capsys):
    spec = _write_smoke_spec(tmp_path)
    assert main(["campaign", "validate", str(spec)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "units: 3" in out


def test_campaign_validate_missing_axis(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('name = "x"\n[defaults]\nmix = "cubic:1"\n')
    assert main(["campaign", "validate", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "campaign error:" in err
    assert "no axes" in err
    assert len(err.strip().splitlines()) == 1  # One line, no traceback.


def test_campaign_validate_bad_cca(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        'name = "x"\n'
        '[defaults]\nmix = "quic:1"\n'
        '[[axes]]\nname = "buffer_bdp"\nvalues = [1]\n'
    )
    assert main(["campaign", "validate", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "unknown congestion control" in err
    assert "quic" in err


def test_campaign_validate_missing_file(tmp_path, capsys):
    assert main(["campaign", "validate", str(tmp_path / "nope.toml")]) == 2
    assert "no such spec file" in capsys.readouterr().err


def test_campaign_run_resume_status_cycle(tmp_path, capsys):
    spec = _write_smoke_spec(tmp_path)
    out_dir = tmp_path / "camp"
    cache = tmp_path / "cache"
    argv_tail = ["--out", str(out_dir), "--cache-dir", str(cache)]

    # Interrupt after 2 of 3 units: exit 3, journal present, and the
    # streamed partial CSV holds exactly the journaled units' rows.
    code = main(
        ["campaign", "run", str(spec), "--stop-after", "2", *argv_tail]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "resume with" in captured.out
    assert (out_dir / "journal.jsonl").exists()
    partial = (out_dir / "results.csv").read_text(encoding="utf-8")
    lines = [line for line in partial.splitlines() if line]
    assert len(lines) == 1 + 2  # header + one row per journaled unit
    assert not (out_dir / "manifest.json").exists()

    assert main(["campaign", "status", str(out_dir)]) == 0
    status = capsys.readouterr().out
    assert "resumable" in status
    assert "2/3 completed" in status

    # Resume: only the missing unit executes.
    code = main(
        ["campaign", "resume", str(out_dir), "--cache-dir", str(cache)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "2 from journal" in out
    assert "1 executed" in out
    assert (out_dir / "results.csv").exists()
    assert (out_dir / "manifest.json").exists()

    assert main(["campaign", "status", str(out_dir)]) == 0
    assert "complete" in capsys.readouterr().out


def test_campaign_run_refuses_existing_journal(tmp_path, capsys):
    spec = _write_smoke_spec(tmp_path)
    out_dir = tmp_path / "camp"
    assert (
        main(
            [
                "campaign",
                "run",
                str(spec),
                "--out",
                str(out_dir),
                "--stop-after",
                "1",
            ]
        )
        == 3
    )
    capsys.readouterr()
    assert (
        main(["campaign", "run", str(spec), "--out", str(out_dir)]) == 2
    )
    assert "campaign resume" in capsys.readouterr().err


def test_campaign_resume_without_journal(tmp_path, capsys):
    assert main(["campaign", "resume", str(tmp_path)]) == 2
    assert "not a campaign directory" in capsys.readouterr().err


def test_campaign_run_no_cache_with_cache_dir_rejected(tmp_path, capsys):
    spec = _write_smoke_spec(tmp_path)
    code = main(
        [
            "campaign",
            "run",
            str(spec),
            "--out",
            str(tmp_path / "camp"),
            "--no-cache",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    assert code == 2
    assert "contradictory" in capsys.readouterr().err


def test_cache_info_and_clear(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "entries: 0" in out

    main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "20",
            "--duration",
            "5",
            "--cache-dir",
            str(cache),
        ]
    )
    capsys.readouterr()
    assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    from repro.exec.fingerprint import CACHE_SCHEMA

    assert "entries: 1" in out
    assert f"schema: {CACHE_SCHEMA}" in out

    assert main(["cache", "clear", "--cache-dir", str(cache)]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert main(["cache", "info", "--cache-dir", str(cache)]) == 0
    assert "entries: 0" in capsys.readouterr().out


def test_list_includes_bundled_campaigns(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "campaigns:" in out
    assert "fig9-ne-quick.toml" in out
    assert "fairness-grid-3axis.toml" in out


def test_figure_cached_rerun_reuses_points(tmp_path, capsys):
    argv = [
        "figure",
        "8",
        "--scale",
        "quick",
        "--jobs",
        "2",
        "--cache-dir",
        str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "exec:" in cold and "jobs=2" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    cold_line = next(l for l in cold.splitlines() if l.startswith("exec:"))
    warm_line = next(l for l in warm.splitlines() if l.startswith("exec:"))
    points = int(cold_line.split()[1])
    hits = int(warm_line.split(",")[1].split()[0])
    assert hits == points  # Warm rerun answered fully from cache.


def test_cc_list_renders_canonical_table(capsys):
    from repro.cc.laws import ALGORITHMS

    assert main(["cc", "list"]) == 0
    out = capsys.readouterr().out
    for name, spec in ALGORITHMS.items():
        assert name in out
        assert spec.summary in out
    # Every algorithm runs on all three substrates, and the listing
    # says so (packet, scalar fluid, and the vectorized fluid kernel).
    assert out.count("[packet+fluid+fluid-vec]") == len(ALGORITHMS)
    # Law parameters come from the kernel modules.
    assert "C_CUBIC=0.4" in out
    assert "GAIN_CYCLE=(1.25, 0.75," in out


def test_cc_list_substrate_sets_match(capsys):
    """The sets the CLI reports are the registries both substrates use."""
    from repro.cc import available_algorithms
    from repro.fluidsim.flows import available_fluid_algorithms

    assert main(["cc", "list"]) == 0
    out = capsys.readouterr().out
    listed = {
        line.split()[0]
        for line in out.splitlines()
        if line and not line.startswith(" ")
    }
    assert listed == set(available_algorithms())
    assert listed == set(available_fluid_algorithms())


# -- invariant sanitizer and warmup flags (PR 5) ----------------------------


@pytest.fixture
def _clean_check_default():
    import os

    from repro.check import clear_default

    clear_default()
    saved = os.environ.pop("REPRO_CHECK", None)
    yield
    clear_default()
    if saved is not None:
        os.environ["REPRO_CHECK"] = saved
    else:
        os.environ.pop("REPRO_CHECK", None)


def test_simulate_with_check_flag(_clean_check_default, capsys):
    import os

    from repro.check import get_default

    code = main(
        [
            "simulate",
            "cubic:1",
            "bbr:1",
            "--mbps",
            "20",
            "--duration",
            "10",
            "--check",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cubic" in out and "bbr" in out
    # --check installs a process default and exports REPRO_CHECK so
    # engine worker processes inherit it.
    assert get_default() is not None
    assert get_default().checks_run > 0
    assert os.environ.get("REPRO_CHECK") == "1"


def test_simulate_packet_with_check_flag(_clean_check_default, capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "10",
            "--duration",
            "5",
            "--backend",
            "packet",
            "--check",
        ]
    )
    assert code == 0
    assert "cubic" in capsys.readouterr().out


def test_simulate_custom_warmup(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "20",
            "--duration",
            "10",
            "--warmup",
            "2",
        ]
    )
    assert code == 0
    assert "cubic" in capsys.readouterr().out


@pytest.mark.parametrize("warmup", ["-1", "10", "11"])
def test_simulate_invalid_warmup_exits_2(warmup, capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--duration",
            "10",
            "--warmup",
            warmup,
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "warmup must lie in" in err


def test_campaign_run_accepts_check_flag(
    _clean_check_default, tmp_path, capsys
):
    spec = tmp_path / "smoke.toml"
    spec.write_text(
        """\
name = "check-smoke"
[link]
bandwidth_mbps = 10.0
rtt_ms = 20.0
buffer_bdp = 2.0
[defaults]
duration = 4.0
backend = "fluid"
mix = "cubic:1"
[[axes]]
name = "seed"
values = [0]
"""
    )
    out_dir = tmp_path / "out"
    code = main(
        ["campaign", "run", str(spec), "--out", str(out_dir), "--check"]
    )
    assert code == 0
    assert (out_dir / "results.csv").exists()


# -- span tracing, progress, top (observability PR) --------------------------


@pytest.fixture
def _clean_trace_env():
    """Undo the process-wide state --spans-out/--trace-out installs."""
    yield
    import os

    from repro.obs import trace

    os.environ.pop("REPRO_TRACE", None)
    os.environ.pop("REPRO_PROFILE_POINTS", None)
    trace.clear_default()


def test_simulate_spans_out_and_trace_report(
    _clean_trace_env, tmp_path, capsys
):
    spans = tmp_path / "spans.json"
    code = main(
        [
            "simulate",
            "cubic:1",
            "bbr:1",
            "--mbps",
            "20",
            "--duration",
            "10",
            "--spans-out",
            str(spans),
            "--profile-points",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "span events" in out

    from repro.obs import read_chrome_trace

    parsed = read_chrome_trace(str(spans))
    names = {span.name for span in parsed.spans}
    assert {"point", "simulate"} <= names
    assert parsed.hotspots  # --profile-points rode along

    assert main(["trace", "report", str(spans)]) == 0
    report = capsys.readouterr().out
    assert "simulate" in report
    assert "self_s" in report
    assert "profiled hotspots" in report


def test_simulate_progress_line(_clean_trace_env, capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "bbr:1",
            "--mbps",
            "20",
            "--duration",
            "10",
            "--progress",
        ]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "1/1" in err and "eta" in err


def test_trace_report_missing_and_malformed(tmp_path, capsys):
    assert main(["trace", "report", str(tmp_path / "nope.json")]) == 2
    assert "cannot read trace" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["trace", "report", str(bad)]) == 2
    assert "malformed trace" in capsys.readouterr().err


def test_campaign_trace_progress_status_top_cycle(
    _clean_trace_env, tmp_path, capsys
):
    import json

    spec = _write_smoke_spec(tmp_path)
    out_dir = tmp_path / "camp"
    trace_path = tmp_path / "camp-trace.json.gz"

    code = main(
        [
            "campaign",
            "run",
            str(spec),
            "--out",
            str(out_dir),
            "--trace-out",
            str(trace_path),
            "--progress",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "span events" in captured.out
    assert "eta" in captured.err  # the live --progress line

    # Chrome trace: campaign > stage > point vocabulary present.
    from repro.obs import read_chrome_trace

    parsed = read_chrome_trace(str(trace_path))
    names = {span.name for span in parsed.spans}
    assert {"campaign", "stage", "point", "simulate"} <= names

    # progress.json sidecar next to the journal.
    sidecar = json.loads((out_dir / "progress.json").read_text())
    assert sidecar["done"] == 3 and sidecar["total"] == 3

    # status --json shares the tracker's ETA math.
    assert main(["campaign", "status", str(out_dir), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["state"] == "complete"
    assert status["units"]["done"] == 3
    assert status["eta_s"] == 0.0
    assert "stage0" in status["stages"]

    # top --once renders the same snapshot for humans.
    assert main(["top", str(out_dir), "--once"]) == 0
    top_out = capsys.readouterr().out
    assert "3/3" in top_out and "eta" in top_out


def test_top_midrun_journal_renders_finite_eta(
    _clean_trace_env, tmp_path, capsys
):
    spec = _write_smoke_spec(tmp_path)
    out_dir = tmp_path / "camp"
    code = main(
        [
            "campaign",
            "run",
            str(spec),
            "--out",
            str(out_dir),
            "--stop-after",
            "2",
        ]
    )
    assert code == 3
    capsys.readouterr()

    assert main(["top", str(out_dir), "--once"]) == 0
    out = capsys.readouterr().out
    assert "2/3" in out
    assert "eta" in out and "eta ?" not in out  # finite estimate
    assert "resumable" in out


def test_top_rejects_non_campaign_dir(tmp_path, capsys):
    assert main(["top", str(tmp_path), "--once"]) == 2
    assert "campaign error" in capsys.readouterr().err


# -- scenario flags (--aqm / --ecn / --capacity-trace) ----------------------


def test_simulate_with_red_aqm(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "bbr:1",
            "--mbps",
            "20",
            "--duration",
            "10",
            "--backend",
            "fluid",
            "--aqm",
            "red",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cubic" in out and "bbr" in out


def test_simulate_with_codel_ecn(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "10",
            "--duration",
            "8",
            "--backend",
            "fluid",
            "--aqm",
            "codel",
            "--ecn",
        ]
    )
    assert code == 0


def test_simulate_with_capacity_trace(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "10",
            "--duration",
            "8",
            "--backend",
            "fluid-vec",
            "--capacity-trace",
            "steps:2@0.5,4@1.0",
        ]
    )
    assert code == 0


def test_simulate_ecn_without_aqm_is_an_error(capsys):
    code = main(
        ["simulate", "cubic:1", "--mbps", "10", "--duration", "5", "--ecn"]
    )
    assert code == 2
    assert "bad scenario" in capsys.readouterr().err


def test_simulate_bad_capacity_trace_is_an_error(capsys):
    code = main(
        [
            "simulate",
            "cubic:1",
            "--mbps",
            "10",
            "--duration",
            "5",
            "--capacity-trace",
            "ramp:1",
        ]
    )
    assert code == 2
    assert "bad scenario" in capsys.readouterr().err


def test_campaign_run_scenario_override_freezes_spec(tmp_path, capsys):
    import json as _json

    spec = _write_smoke_spec(tmp_path)
    out_dir = tmp_path / "camp"
    code = main(
        [
            "campaign",
            "run",
            str(spec),
            "--out",
            str(out_dir),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--aqm",
            "red",
        ]
    )
    assert code == 0
    frozen = _json.loads((out_dir / "spec.json").read_text())
    # The override lands in the frozen spec, so resume reruns the same
    # scenario even without the flag.
    assert frozen["spec"]["link"]["aqm"]["kind"] == "red"


REPORT_SPEC = """\
name = "cli-report"
[link]
bandwidth_mbps = 20.0
rtt_ms = 20.0
buffer_bdp = 1.5
[defaults]
duration = 4.0
backend = "fluid"
mix = "cubic:1,bbr:1"
[[axes]]
name = "aqm"
values = ["droptail", "red"]
[[axes]]
name = "backend"
values = ["fluid", "fluid-vec"]
[metrics]
columns = ["aggregate_mbps:cubic", "aggregate_mbps:bbr", "drop_rate"]
"""


def test_campaign_report_cli(tmp_path, capsys):
    spec = tmp_path / "report.toml"
    spec.write_text(REPORT_SPEC)
    out_dir = tmp_path / "camp"
    assert (
        main(
            [
                "campaign",
                "run",
                str(spec),
                "--out",
                str(out_dir),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        == 0
    )
    code = main(
        ["campaign", "report", str(out_dir), "--reference", "fluid"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "model error" in out
    assert "wrote" in out
    assert (out_dir / "model_error.csv").exists()


def test_campaign_report_without_compare_axis(tmp_path, capsys):
    spec = _write_smoke_spec(tmp_path)
    out_dir = tmp_path / "camp"
    main(
        [
            "campaign",
            "run",
            str(spec),
            "--out",
            str(out_dir),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
    )
    capsys.readouterr()
    assert main(["campaign", "report", str(out_dir)]) == 2
    assert "does not sweep" in capsys.readouterr().err
