"""Loss-synchronization analysis (§3.2/§5's trace checks)."""

import pytest

from repro.analysis.sync import (
    classify_regime,
    cluster_loss_events,
    synchronization_index,
)


def test_cluster_groups_nearby_backoffs():
    loss_times = [[1.00, 5.00], [1.01, 9.00]]
    clusters = cluster_loss_events(loss_times, window=0.05)
    assert len(clusters) == 3
    assert clusters[0].size == 2          # Flows 0 and 1 at t≈1.
    assert clusters[1].size == 1
    assert clusters[2].size == 1


def test_cluster_chained_window():
    # 0.9-apart events with a 1.0 window chain into one cluster.
    clusters = cluster_loss_events([[0.0, 0.9, 1.8]], window=1.0)
    assert len(clusters) == 1
    assert clusters[0].start == 0.0
    assert clusters[0].end == 1.8


def test_cluster_empty():
    assert cluster_loss_events([[], []], window=0.1) == []


def test_cluster_window_validation():
    with pytest.raises(ValueError):
        cluster_loss_events([[1.0]], window=0.0)


def test_synchronized_trace_scores_one():
    # Every event hits both flows.
    loss_times = [[1.0, 5.0, 9.0], [1.02, 5.01, 9.03]]
    index = synchronization_index(loss_times, n_flows=2, window=0.1)
    assert index == pytest.approx(1.0)


def test_desynchronized_trace_scores_one_over_n():
    # Alternating solo backoffs.
    loss_times = [[1.0, 5.0], [3.0, 7.0]]
    index = synchronization_index(loss_times, n_flows=2, window=0.1)
    assert index == pytest.approx(0.5)


def test_no_events_scores_zero():
    assert synchronization_index([[], []], 2, 0.1) == 0.0


def test_classify_regimes():
    sync_trace = [[1.0, 5.0], [1.01, 5.01], [1.02, 5.02]]
    desync_trace = [[1.0], [3.0], [5.0]]
    assert classify_regime(sync_trace, 3, 0.1) == "synchronized"
    assert classify_regime(desync_trace, 3, 0.1) == "de-synchronized"


def test_classify_partial():
    # Half the flows per event.
    trace = [[1.0, 5.0], [1.01, 5.01], [9.0], [9.01]]
    label = classify_regime(trace, 4, 0.1)
    assert label == "partial"


def test_validation():
    with pytest.raises(ValueError):
        synchronization_index([[1.0]], 0, 0.1)


def test_fluid_sync_mode_is_detected_as_synchronized():
    """End-to-end: the fluid simulator's imposed sync mode must be
    classified as synchronized from its own loss events, and desync as
    de-synchronized — closing the loop on §2.4's bounds."""
    from repro.fluidsim import FluidSimulation, FluidSpec
    from repro.util.config import LinkConfig

    link = LinkConfig.from_mbps_ms(50, 40, 4)
    labels = {}
    for mode in ("sync", "desync"):
        sim = FluidSimulation(
            link,
            [FluidSpec("cubic") for _ in range(4)],
            loss_mode=mode,
            seed=1,
        )
        sim.run(60)
        rtt = 0.04 + sim.queue_bytes / link.capacity
        labels[mode] = classify_regime(
            sim.loss_events[:4], n_flows=4, window=2 * rtt
        )
    assert labels["sync"] == "synchronized"
    assert labels["desync"] == "de-synchronized"
