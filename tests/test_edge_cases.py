"""Edge cases across the public API: degenerate sizes and extremes."""

import pytest

from repro.core.game import ThroughputTable, bisect_nash
from repro.core.multi_flow import predict_multi_flow
from repro.core.nash import predict_nash
from repro.core.two_flow import predict_two_flow
from repro.util.config import LinkConfig


def test_single_flow_game():
    """n = 1: the lone flow picks whichever CCA gives it the link; both
    give the whole link, so both pure states are NE."""
    table = ThroughputTable(
        n_flows=1, lambda_a=[100.0, 0.0], lambda_b=[0.0, 100.0]
    )
    assert set(table.nash_equilibria()) == {0, 1}


def test_bisect_on_two_flow_game():
    table = ThroughputTable(
        n_flows=2,
        lambda_a=[50.0, 30.0, 0.0],
        lambda_b=[0.0, 70.0, 50.0],
    )
    equilibria, _ = bisect_nash(
        2, lambda k: (table.lambda_a[k], table.lambda_b[k])
    )
    assert equilibria == table.nash_equilibria()


def test_nash_with_one_flow():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    pred = predict_nash(link, 1)
    assert 0 <= pred.n_bbr_sync <= 1
    assert 0 <= pred.n_bbr_desync <= 1


def test_model_on_tiny_and_huge_links():
    for mbps, rtt in ((0.1, 1), (10_000, 500)):
        link = LinkConfig.from_mbps_ms(mbps, rtt, 5)
        pred = predict_two_flow(link)
        assert 0 <= pred.bbr_fraction <= 1
        # Scale invariance means the fraction matches the canonical link.
        canonical = predict_two_flow(LinkConfig.from_mbps_ms(100, 40, 5))
        assert pred.bbr_fraction == pytest.approx(
            canonical.bbr_fraction, rel=1e-9
        )


def test_buffer_exactly_one_bdp():
    link = LinkConfig.from_mbps_ms(100, 40, 1.0)
    pred = predict_two_flow(link)
    # Degenerate edge of the validity domain: BBR gets everything.
    assert pred.bbr_fraction == pytest.approx(1.0)


def test_multi_flow_one_versus_many():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    pred = predict_multi_flow(link, 99, 1)
    assert 0 < pred.per_flow_bbr_desync
    assert pred.per_flow_cubic_sync < link.capacity / 50


def test_fractional_bdp_buffers_rejected_only_if_nonpositive():
    with pytest.raises(ValueError):
        LinkConfig.from_mbps_ms(100, 40, 0)
    # 0.5 BDP is legal (Figure 9 sweeps it) — just out of model range.
    pred = predict_two_flow(LinkConfig.from_mbps_ms(100, 40, 0.5))
    assert not pred.in_validity_range


def test_throughput_table_with_flat_payoffs():
    """All-equal payoffs: every distribution is an NE (nobody gains)."""
    n = 5
    table = ThroughputTable(
        n_flows=n, lambda_a=[10.0] * (n + 1), lambda_b=[10.0] * (n + 1)
    )
    assert table.nash_equilibria() == list(range(n + 1))
    # Best response never moves.
    for start in range(n + 1):
        assert table.best_response_path(start) == [start]
