"""Packet-simulator controller tracing."""

import pytest

from repro.sim.network import DumbbellNetwork, FlowSpec
from repro.sim.trace import CwndTracer
from repro.util.config import LinkConfig


@pytest.fixture(scope="module")
def traced_run():
    link = LinkConfig.from_mbps_ms(10, 20, 4)
    net = DumbbellNetwork(link, [FlowSpec("cubic"), FlowSpec("bbr")])
    tracer = CwndTracer(net, interval=0.1)
    result = net.run(30)
    return net, tracer, result


def test_samples_cover_both_flows(traced_run):
    _net, tracer, _result = traced_run
    assert tracer.for_flow(0)
    assert tracer.for_flow(1)
    # ~300 samples per flow at 0.1 s over 30 s.
    assert len(tracer.for_flow(0)) == pytest.approx(300, abs=3)


def test_series_extraction(traced_run):
    _net, tracer, _result = traced_run
    times, cwnds = tracer.series(0, "cwnd")
    assert len(times) == len(cwnds)
    assert all(b >= a for a, b in zip(times, times[1:]))
    assert all(c > 0 for c in cwnds)


def test_bbr_state_recorded_and_cubic_not(traced_run):
    _net, tracer, _result = traced_run
    bbr_states = {s.state for s in tracer.for_flow(1)}
    assert "PROBE_BW" in bbr_states  # Steady state reached.
    cubic_states = {s.state for s in tracer.for_flow(0)}
    assert cubic_states == {None}


def test_bbr_spends_most_time_in_probe_bw(traced_run):
    """§2.1: "BBR spends a majority of time in the ProbeBW state"."""
    _net, tracer, _result = traced_run
    durations = tracer.state_durations(1)
    total = sum(durations.values())
    assert durations.get("PROBE_BW", 0.0) > 0.6 * total


def test_bbr_visits_probe_rtt(traced_run):
    """Over 30 s (3 ProbeRTT cycles) the 10 s cadence must show up."""
    _net, tracer, _result = traced_run
    durations = tracer.state_durations(1)
    assert "PROBE_RTT" in durations


def test_in_flight_bounded_by_recent_cwnd(traced_run):
    """The sender never transmits beyond cwnd.  In-flight can exceed the
    *current* cwnd transiently when the controller shrinks its target
    (BBR's estimate decaying), so the bound uses the previous sample's
    cwnd as well."""
    _net, tracer, _result = traced_run
    for flow_id in (0, 1):
        samples = tracer.for_flow(flow_id)
        previous_cwnd = float("inf")
        for sample in samples:
            bound = max(sample.cwnd, previous_cwnd) + 1500
            assert sample.in_flight <= bound
            previous_cwnd = sample.cwnd


def test_cubic_sawtooth_visible_in_cwnd_trace(traced_run):
    from repro.analysis.timeseries import detect_sawtooth_peaks

    _net, tracer, _result = traced_run
    times, cwnds = tracer.series(0, "cwnd")
    peaks = detect_sawtooth_peaks(times, cwnds, min_drop=0.25)
    assert peaks, "CUBIC should show multiplicative-decrease peaks"


def test_interval_validation():
    link = LinkConfig.from_mbps_ms(10, 20, 4)
    net = DumbbellNetwork(link, [FlowSpec("cubic")])
    with pytest.raises(ValueError):
        CwndTracer(net, interval=0.0)
