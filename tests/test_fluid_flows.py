"""Fluid flow dynamics: per-CCA behaviour at tick granularity."""

import pytest

from repro.fluidsim.core import TickContext
from repro.fluidsim.flows import (
    FluidBBR,
    FluidBBR2,
    FluidCopa,
    FluidCubic,
    FluidReno,
    FluidVivace,
    available_fluid_algorithms,
    make_fluid_flow,
)


def ctx(now, dt=0.01, throughput=1e6, rtt=0.04, qd=0.0, lost=0.0):
    c = TickContext()
    c.now = now
    c.dt = dt
    c.throughput = throughput
    c.base_rtt = rtt
    c.queue_delay = qd
    c.rtt_measured = rtt + qd
    c.lost_bytes = lost
    return c


def drive(flow, seconds, dt=0.01, **kwargs):
    now = getattr(flow, "_test_now", 0.0)
    end = now + seconds
    while now < end:
        now += dt
        flow.tick(ctx(now, dt=dt, **kwargs))
    flow._test_now = now
    return now


def test_registry_matches_packet_algorithms():
    names = available_fluid_algorithms()
    for name in ("reno", "cubic", "bbr", "bbr2", "copa", "vivace"):
        assert name in names


def test_make_fluid_flow_unknown():
    with pytest.raises(KeyError):
        make_fluid_flow("westwood", flow_id=0, rtt=0.04)


def test_invalid_rtt():
    with pytest.raises(ValueError):
        FluidCubic(flow_id=0, rtt=0.0)


class TestFluidCubic:
    def test_slow_start_until_loss(self):
        f = FluidCubic(0, rtt=0.04)
        start = f.inflight
        drive(f, 0.04)
        assert f.inflight == pytest.approx(2 * start, rel=0.05)

    def test_loss_backs_off_to_seventy_percent(self):
        f = FluidCubic(0, rtt=0.04, fast_convergence=False)
        drive(f, 0.2)
        before = f.inflight
        f.on_loss(0.2)
        assert f.inflight == pytest.approx(0.7 * before)

    def test_loss_guard_one_per_rtt(self):
        f = FluidCubic(0, rtt=0.04, fast_convergence=False)
        drive(f, 0.2)
        before = f.inflight
        f.on_loss(0.200)
        f.on_loss(0.205)
        assert f.inflight == pytest.approx(0.7 * before)

    def test_regrows_toward_w_max(self):
        f = FluidCubic(0, rtt=0.04, fast_convergence=False)
        drive(f, 0.3, throughput=5e6)
        w_max = f.inflight
        f.on_loss(0.3)
        drive(f, 10.0, throughput=5e6)
        assert f.inflight >= 0.95 * w_max

    def test_fast_convergence_lowers_w_max(self):
        f = FluidCubic(0, rtt=0.04, fast_convergence=True)
        drive(f, 0.3)
        f.on_loss(0.3)
        drive(f, 0.1)
        w1 = f._w_max_pkts
        f.on_loss(0.5)
        assert f._w_max_pkts < w1


class TestFluidReno:
    def test_additive_increase_after_loss(self):
        f = FluidReno(0, rtt=0.04)
        f.on_loss(0.0)  # Exit slow start.
        start = f.inflight
        drive(f, 0.04 * 10)  # 10 RTTs → +10 MSS.
        assert f.inflight == pytest.approx(start + 10 * 1500, rel=0.05)

    def test_halves_on_loss(self):
        f = FluidReno(0, rtt=0.04)
        drive(f, 0.2)
        before = f.inflight
        f.on_loss(0.2)
        assert f.inflight == pytest.approx(before / 2)


class TestFluidBBR:
    def test_loss_agnostic(self):
        f = FluidBBR(0, rtt=0.04)
        drive(f, 2.0, throughput=2e6)
        before = f.inflight
        f.on_loss(2.0)
        assert f.inflight == before

    def test_inflight_capped_at_twice_estimated_bdp(self):
        f = FluidBBR(0, rtt=0.04)
        drive(f, 5.0, throughput=2e6, qd=0.0)
        cap = 2.0 * f.bw_est * f.rtt_min_est
        assert f.inflight <= cap * 1.01

    def test_probe_rtt_drains_to_four_packets(self):
        f = FluidBBR(0, rtt=0.04)
        drive(f, 2.0, throughput=2e6)
        # Hold the measured RTT above the minimum for > 10 s; the flow
        # must pass through a 200 ms ProbeRTT drain along the way.
        now = f._test_now
        drained = False
        for _ in range(1100):
            now += 0.01
            f.tick(ctx(now, throughput=2e6, qd=0.05))
            if f._probe_rtt_until is not None:
                drained = True
                assert f.inflight == 4 * 1500
        assert drained

    def test_probe_rtt_refreshes_rtt_min(self):
        f = FluidBBR(0, rtt=0.04)
        drive(f, 2.0, throughput=2e6)
        drive(f, 10.5, throughput=2e6, qd=0.05)
        # After the stale-RTT period a probe ran; subsequent smaller
        # samples (others' queue at 30 ms) set the new minimum.
        drive(f, 0.3, throughput=2e6, qd=0.03)
        assert f.rtt_min_est == pytest.approx(0.07, rel=0.05)

    def test_rtt_bloat_raises_inflight_cap(self):
        """Equation (9): a bloated RTT_min raises the 2×BDP cap — the
        mechanism behind BBR's buffer share in the model."""
        caps = {}
        for name, rtt_min in (("low", 0.04), ("high", 0.08)):
            f = FluidBBR(0, rtt=0.04)
            f._in_startup = False
            f._bw_filter.update(0.0, 2e6)
            f.rtt_min_est = rtt_min
            f._rtt_min_stamp = 0.0
            f.inflight = 1e6  # Far above any cap.
            f.tick(ctx(0.01, throughput=2e6, qd=0.06))
            caps[name] = f.inflight
        assert caps["low"] == pytest.approx(2 * 2e6 * 0.04)
        assert caps["high"] == pytest.approx(2 * 2e6 * 0.08)
        assert caps["high"] > caps["low"]

    def test_gain_cycling_changes_pacing_phase(self):
        f = FluidBBR(0, rtt=0.04, gain_cycling=True)
        drive(f, 2.0, throughput=2e6)
        gains = set()
        now = f._test_now
        for _ in range(200):
            now += 0.01
            f.tick(ctx(now, throughput=2e6))
            gains.add(f._current_gain(now))
        assert 1.25 in gains and 0.75 in gains


class TestFluidBBR2:
    def test_loss_bounds_inflight(self):
        f = FluidBBR2(0, rtt=0.04)
        drive(f, 3.0, throughput=2e6)
        # A round with heavy drops.
        now = f._test_now
        f.tick(ctx(now + 0.01, throughput=2e6, lost=20_000))
        f._round_lost += 20_000
        f.on_loss(now + 0.02)
        assert f.inflight_hi < float("inf")

    def test_small_loss_tolerated(self):
        f = FluidBBR2(0, rtt=0.04)
        drive(f, 3.0, throughput=2e6)
        f._round_lost = 10.0        # ≪ 2% of the round's delivery.
        f._round_delivered = 1e6
        f.on_loss(f._test_now)
        assert f.inflight_hi == float("inf")

    def test_probe_up_regrows_bound(self):
        f = FluidBBR2(0, rtt=0.04)
        drive(f, 3.0, throughput=2e6)
        f._round_lost = 1e5
        f._round_delivered = 1e6
        f.on_loss(f._test_now)
        bound = f.inflight_hi
        drive(f, 4.0, throughput=2e6)
        assert f.inflight_hi > bound


class TestFluidCopa:
    def test_opens_when_no_queue(self):
        f = FluidCopa(0, rtt=0.04)
        start = f.inflight
        drive(f, 1.0, qd=0.0)
        assert f.inflight > start

    def test_closes_when_queue_large(self):
        f = FluidCopa(0, rtt=0.04)
        drive(f, 0.5, qd=0.0)
        f.inflight = 1e6
        before = f.inflight
        drive(f, 1.0, qd=0.2)
        assert f.inflight < before

    def test_halves_on_loss(self):
        f = FluidCopa(0, rtt=0.04)
        drive(f, 0.5)
        before = f.inflight
        f.on_loss(0.5)
        assert f.inflight == pytest.approx(before / 2, rel=0.01)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            FluidCopa(0, rtt=0.04, delta=0)


class TestFluidVivace:
    def test_rate_grows_on_clean_path(self):
        f = FluidVivace(0, rtt=0.04)
        start = f.rate
        # Self-clocked: the achieved rate tracks the current probe rate,
        # so the (1+ε) interval scores higher utility and the rate climbs.
        now = 0.0
        for _ in range(300):
            now += 0.01
            f.tick(ctx(now, qd=0.0, throughput=f._probe_rate()))
        assert f.rate > start

    def test_latency_variant_backs_off_under_rising_queue(self):
        f = FluidVivace(0, rtt=0.04, latency_coeff=900.0)
        drive(f, 1.0, qd=0.0, throughput=2e6)
        after_clean = f.rate
        # Steadily rising queue delay punishes the latency variant; the
        # achieved rate tracks the probe rate (self-clocked pipe).
        now = f._test_now
        qd = 0.0
        for _ in range(600):
            now += 0.01
            qd += 0.0004
            f.tick(ctx(now, throughput=f._probe_rate(), qd=qd))
        assert f.rate < after_clean

    def test_drop_accounting(self):
        f = FluidVivace(0, rtt=0.04)
        f.tick(ctx(0.01))
        f.on_drop(0.01, 5000.0)
        assert f._mi_lost >= 5000.0

    def test_inflight_tracks_rate(self):
        f = FluidVivace(0, rtt=0.04)
        drive(f, 1.0, qd=0.01)
        assert f.inflight == pytest.approx(
            f._probe_rate() * 0.05, rel=0.2
        )
