"""repro.obs.progress + repro.campaign.status: ETA math, sidecar, top."""

import json

import pytest

from repro.campaign import (
    campaign_progress,
    parse_spec,
    render_status,
    run_campaign,
)
from repro.exec import Engine
from repro.obs.progress import (
    PROGRESS_NAME,
    ProgressTracker,
    eta_seconds,
    format_duration,
    rss_self_kb,
)

SPEC = {
    "name": "t",
    "link": {"bandwidth_mbps": 20.0, "rtt_ms": 20.0, "buffer_bdp": 1.0},
    "defaults": {
        "duration": 5.0,
        "backend": "fluid",
        "mix": "cubic:1,bbr:1",
    },
    "axes": [{"name": "buffer_bdp", "values": [1, 2, 3]}],
}


def _spec():
    return parse_spec(json.loads(json.dumps(SPEC)))


# -- eta_seconds: the one shared formula -------------------------------------


def test_eta_none_without_total_or_work():
    assert eta_seconds(0, 10, 5.0) is None  # nothing done yet
    assert eta_seconds(5, None, 5.0) is None  # unknown total
    assert eta_seconds(5, 10, 0.0) is None  # no elapsed, no rate


def test_eta_zero_when_done():
    assert eta_seconds(10, 10, 5.0) == 0.0
    assert eta_seconds(12, 10, 5.0) == 0.0  # overshoot clamps


def test_eta_uses_explicit_rate_over_mean():
    # Cumulative mean would say (10-5)/1 = 5s; the EWMA rate wins.
    assert eta_seconds(5, 10, 5.0, rate_per_s=5.0) == pytest.approx(1.0)
    assert eta_seconds(5, 10, 5.0) == pytest.approx(5.0)


def test_eta_rejects_zero_rate():
    assert eta_seconds(5, 10, 5.0, rate_per_s=0.0) is None


def test_format_duration():
    assert format_duration(None) == "?"
    assert format_duration(0.4) == "0:00"
    assert format_duration(65) == "1:05"
    assert format_duration(3661) == "1:01:01"
    assert format_duration(float("inf")) == "?"
    assert format_duration(float("nan")) == "?"


def test_rss_self_kb_positive():
    assert rss_self_kb() > 0


# -- ProgressTracker ---------------------------------------------------------


def test_tracker_update_and_render():
    tracker = ProgressTracker(total=10, label="t")
    tracker.update(2, 10, 1)
    assert tracker.done == 2
    assert tracker.hits == 1
    line = tracker.render()
    assert "2/10" in line and "t" in line and "eta" in line


def test_tracker_rejects_bad_alpha():
    with pytest.raises(ValueError, match="ewma_alpha"):
        ProgressTracker(ewma_alpha=0.0)
    with pytest.raises(ValueError, match="ewma_alpha"):
        ProgressTracker(ewma_alpha=1.5)


def test_tracker_rate_falls_back_to_cumulative_mean():
    tracker = ProgressTracker(total=10)
    assert tracker.rate_per_s() is None  # nothing done, no estimate
    tracker.done = 5  # bypass update() so no EWMA interval exists
    assert tracker.rate_per_s() > 0


def test_tracker_ewma_smooths_rate():
    tracker = ProgressTracker(total=100, ewma_alpha=0.5)
    tracker.update(10, 100, 0)
    first = tracker.rate_per_s()
    tracker.update(20, 100, 0)
    second = tracker.rate_per_s()
    assert first is not None and second is not None
    assert second > 0


def test_tracker_hit_rate_prefers_point_counters():
    tracker = ProgressTracker(total=4)
    tracker.update(2, 4, 0)  # 2 of 4 *units*
    tracker.update_points(20, 30, 10)  # engine: 20 points, 10 hits
    assert tracker.hit_rate() == pytest.approx(0.5)
    snap = tracker.snapshot()
    assert snap["points_done"] == 20
    assert snap["cache_hits"] == 10


def test_tracker_worker_health_and_stages():
    tracker = ProgressTracker(total=4)
    tracker.heartbeat(1234, rss_kb=2048)
    tracker.heartbeat(1234, rss_kb=1024)  # RSS keeps the max
    tracker.stage_progress("sweep", 1, 4)
    snap = tracker.snapshot()
    worker = snap["workers"]["1234"]
    assert worker["rss_kb"] == 2048
    assert worker["points"] == 2
    assert worker["last_seen_age_s"] >= 0
    assert snap["stages"]["sweep"] == {"done": 1, "total": 4}


def test_sidecar_is_valid_json_and_atomic(tmp_path):
    tracker = ProgressTracker(total=3, label="t")
    tracker.update(1, 3, 0)
    path = tmp_path / PROGRESS_NAME
    tracker.write_sidecar(str(path))
    data = json.loads(path.read_text())
    assert data["kind"] == "progress"
    assert data["done"] == 1 and data["total"] == 3
    # No temp file left behind.
    assert list(tmp_path.iterdir()) == [path]


# -- campaign integration ----------------------------------------------------


def test_run_campaign_writes_progress_sidecar(tmp_path):
    out = tmp_path / "camp"
    run_campaign(_spec(), out, engine=Engine())
    data = json.loads((out / PROGRESS_NAME).read_text())
    assert data["done"] == 3 and data["total"] == 3
    assert data["label"] == "t"
    assert data["stages"]["stage0"] == {"done": 3, "total": 3}
    # The sink's running row counter, not a retained-outcome sum.
    assert data["rows"] == 3


def test_tracker_set_rows_lands_in_snapshot():
    tracker = ProgressTracker(total=2)
    assert tracker.snapshot()["rows"] == 0
    tracker.set_rows(17)
    assert tracker.rows == 17
    assert tracker.snapshot()["rows"] == 17


def test_campaign_progress_complete_dir(tmp_path):
    out = tmp_path / "camp"
    run_campaign(_spec(), out, engine=Engine())
    status = campaign_progress(out)
    assert status["state"] == "complete"
    assert status["units"] == {"done": 3, "total": 3, "remaining": 0}
    assert status["eta_s"] == 0.0
    assert status["stages"]["stage0"] == {"done": 3, "total": 3}
    rendered = render_status(status)
    assert "3/3" in rendered and "complete" in rendered


def test_campaign_progress_midrun_has_finite_eta(tmp_path):
    out = tmp_path / "camp"
    summary = run_campaign(
        _spec(), out, engine=Engine(), stop_after=1
    )
    assert summary.interrupted
    status = campaign_progress(out)
    assert status["state"] == "resumable"
    assert status["units"]["done"] == 1
    assert status["units"]["remaining"] == 2
    # The live sidecar (fresh) or journal fallback must yield a finite,
    # positive ETA — the 'top' acceptance criterion.
    assert status["eta_s"] is not None
    assert status["eta_s"] > 0
    rendered = render_status(status)
    assert "resumable" in rendered


def test_campaign_progress_status_and_tracker_eta_agree(tmp_path):
    """status --json shares eta_seconds with the live tracker: feeding
    both the same counts and rate produces the same estimate."""
    tracker = ProgressTracker(total=8)
    tracker.done = 2
    rate = 0.5
    tracker._ewma_rate = rate
    assert tracker.eta_s() == pytest.approx(
        eta_seconds(2, 8, tracker.elapsed_s, rate)
    )
