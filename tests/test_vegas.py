"""TCP Vegas (delay-based baseline for the game-theory lineage)."""

import pytest

from repro.cc.vegas import ALPHA_PACKETS, BETA_PACKETS, Vegas


def test_registered():
    from repro.cc import available_algorithms

    assert "vegas" in available_algorithms()


def test_queued_packets_estimate():
    cc = Vegas(mss=1000)
    cc.base_rtt = 0.040
    cc.cwnd = 20_000  # 20 packets.
    # RTT 50 ms → expected 500 pkt/s, actual 400 pkt/s → 4 pkts queued.
    assert cc.queued_packets(0.050) == pytest.approx(4.0)


def test_queued_packets_zero_without_base():
    assert Vegas().queued_packets(0.05) == 0.0


def test_alpha_beta_defaults():
    assert ALPHA_PACKETS == 2.0
    assert BETA_PACKETS == 4.0


def test_holds_within_target_band(driver_factory):
    cc = Vegas(mss=1000)
    cc._in_slow_start = False
    cc.base_rtt = 0.040
    cc.cwnd = 30_000
    d = driver_factory(cc, rate=1e6, rtt=0.044)  # diff = 3 ∈ (α, β).
    before = cc.cwnd
    d.acks(200, rtt=0.044)
    assert cc.cwnd == pytest.approx(before, rel=0.1)


def test_grows_when_queue_below_alpha(driver_factory):
    cc = Vegas(mss=1000)
    cc._in_slow_start = False
    cc.base_rtt = 0.040
    cc.cwnd = 30_000
    d = driver_factory(cc, rate=1e6, rtt=0.040)  # diff = 0 < α.
    d.acks(300, rtt=0.040)
    assert cc.cwnd > 30_000


def test_shrinks_when_queue_above_beta(driver_factory):
    cc = Vegas(mss=1000)
    cc._in_slow_start = False
    cc.base_rtt = 0.040
    cc.cwnd = 40_000
    d = driver_factory(cc, rate=1e6, rtt=0.080)  # diff = 20 > β.
    d.acks(300, rtt=0.080)
    assert cc.cwnd < 40_000


def test_loss_halves(driver_factory):
    cc = Vegas(mss=1000)
    d = driver_factory(cc)
    d.acks(10)
    before = cc.cwnd
    d.lose()
    assert cc.cwnd == pytest.approx(before / 2)


def test_slow_start_exits_on_queue_buildup(driver_factory):
    cc = Vegas(mss=1000)
    d = driver_factory(cc, rate=1e6, rtt=0.040)
    d.acks(5, rtt=0.040)
    # Sudden queueing: diff blows past γ at the next round boundary.
    d.acks(200, rtt=0.120)
    assert not cc._in_slow_start


def test_vegas_loses_to_cubic_end_to_end():
    """The historical outcome the paper's §5 narrative builds on."""
    from repro.sim.network import FlowSpec, run_dumbbell
    from repro.util.config import LinkConfig

    link = LinkConfig.from_mbps_ms(10, 20, 4)
    result = run_dumbbell(
        link,
        [FlowSpec("vegas"), FlowSpec("cubic")],
        duration=30,
        warmup=5,
    )
    vegas, cubic = result.flows
    assert cubic.throughput > 4 * vegas.throughput


def test_vegas_alone_keeps_queue_tiny():
    from repro.sim.network import FlowSpec, run_dumbbell
    from repro.util.config import LinkConfig

    link = LinkConfig.from_mbps_ms(10, 20, 4)
    result = run_dumbbell(link, [FlowSpec("vegas")], duration=20, warmup=5)
    assert result.flows[0].throughput_mbps > 9.0
    # α–β packets of queue ≈ 2-4 × 1.2 ms at 10 Mbps.
    assert result.mean_queuing_delay < 0.010


def test_fluid_vegas_matches_packet_outcome():
    from repro.fluidsim import FluidSpec, run_fluid
    from repro.util.config import LinkConfig

    link = LinkConfig.from_mbps_ms(10, 20, 4)
    result = run_fluid(
        link,
        [FluidSpec("vegas"), FluidSpec("cubic")],
        duration=60,
        warmup=10,
    )
    vegas, cubic = result.flows
    assert cubic.throughput > 4 * vegas.throughput
