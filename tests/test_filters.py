"""Windowed min/max filters and EWMA (BBR's estimators)."""

import pytest

from repro.util.filters import Ewma, WindowedMax, WindowedMin


class TestWindowedMax:
    def test_tracks_maximum(self):
        f = WindowedMax(10.0)
        assert f.update(0.0, 5.0) == 5.0
        assert f.update(1.0, 3.0) == 5.0
        assert f.update(2.0, 7.0) == 7.0

    def test_expires_old_samples(self):
        f = WindowedMax(10.0)
        f.update(0.0, 100.0)
        f.update(5.0, 1.0)
        # At t=11 the 100 sample has left the window.
        assert f.update(11.0, 2.0) == 2.0

    def test_get_without_now_does_not_expire(self):
        f = WindowedMax(10.0)
        f.update(0.0, 9.0)
        assert f.get() == 9.0

    def test_get_with_now_expires(self):
        f = WindowedMax(10.0)
        f.update(0.0, 9.0)
        assert f.get(now=20.0) is None

    def test_empty_returns_none(self):
        assert WindowedMax(1.0).get() is None

    def test_reset(self):
        f = WindowedMax(10.0)
        f.update(0.0, 5.0)
        f.reset()
        assert f.get() is None
        assert len(f) == 0

    def test_monotone_deque_stays_small(self):
        f = WindowedMax(100.0)
        for i in range(1000):
            f.update(i * 0.01, 1000.0 - i)
        # Decreasing samples: all retained (each could become the max).
        assert len(f) == 1000
        f.reset()
        for i in range(1000):
            f.update(i * 0.01, float(i))
        # Increasing samples: only the newest survives.
        assert len(f) == 1

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedMax(0.0)


class TestWindowedMin:
    def test_tracks_minimum(self):
        f = WindowedMin(10.0)
        assert f.update(0.0, 5.0) == 5.0
        assert f.update(1.0, 8.0) == 5.0
        assert f.update(2.0, 2.0) == 2.0

    def test_expiry_reveals_recent_min(self):
        f = WindowedMin(10.0)
        f.update(0.0, 0.040)
        f.update(5.0, 0.120)
        f.update(12.0, 0.100)
        # The 40 ms sample expired; min of the rest is 100 ms.
        assert f.get(now=12.0) == pytest.approx(0.100)

    def test_mutable_window(self):
        f = WindowedMin(10.0)
        f.update(0.0, 1.0)
        f.window = 0.5
        assert f.get(now=1.0) is None


class TestEwma:
    def test_first_sample_sets_value(self):
        e = Ewma(0.5)
        assert e.update(10.0) == 10.0

    def test_converges_toward_constant_input(self):
        e = Ewma(0.5)
        e.update(0.0)
        for _ in range(20):
            e.update(100.0)
        assert e.value == pytest.approx(100.0, rel=1e-4)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)

    def test_reset(self):
        e = Ewma(0.2)
        e.update(5.0)
        e.reset()
        assert e.value is None


class TestNonMonotonicClock:
    def test_regressed_time_is_clamped(self):
        f = WindowedMax(10.0)
        f.update(5.0, 1.0)
        # A sample 'from the past' must not corrupt the time-ordered
        # deque; it is treated as arriving at the newest known time.
        f.update(3.0, 2.0)
        assert f.get() == 2.0
        assert all(t == 5.0 for t, _ in f._samples)

    def test_clamped_sample_expires_with_the_window(self):
        f = WindowedMin(10.0)
        f.update(5.0, 9.0)
        f.update(1.0, 4.0)  # Clamped to t=5.
        assert f.update(14.0, 8.0) == 4.0   # Still inside the window.
        assert f.update(15.1, 8.0) == 8.0   # Expired with the t=5 batch.

    def test_forward_time_still_advances(self):
        f = WindowedMax(10.0)
        f.update(3.0, 1.0)
        f.update(5.0, 2.0)
        assert f._latest == 5.0
