"""The CCA-selection game: NE enumeration, dynamics, group game."""

import pytest

from repro.core.game import (
    FlowGroup,
    GroupGame,
    ThroughputTable,
    bisect_nash,
)


def linear_table(n=10, capacity=100.0, crossing=6):
    """A synthetic game shaped like Figure 6: BBR per-flow advantage
    decreases in k and crosses the fair-share line at ``crossing``."""
    fair = capacity / n
    lambda_a, lambda_b = [], []
    for k in range(n + 1):
        adv = (crossing - k) * 1.0
        b = fair + adv if k > 0 else 0.0
        total_b = b * k
        a = (capacity - total_b) / (n - k) if k < n else 0.0
        lambda_a.append(a)
        lambda_b.append(b)
    return ThroughputTable(n_flows=n, lambda_a=lambda_a, lambda_b=lambda_b)


class TestThroughputTable:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            ThroughputTable(n_flows=3, lambda_a=[1, 2], lambda_b=[1, 2])

    def test_from_function(self):
        table = ThroughputTable.from_function(4, lambda k: (4 - k, k))
        assert table.lambda_a == [4, 3, 2, 1, 0]
        assert table.lambda_b == [0, 1, 2, 3, 4]

    def test_is_nash_bounds_checked(self):
        table = linear_table()
        with pytest.raises(ValueError):
            table.is_nash(-1)
        with pytest.raises(ValueError):
            table.is_nash(11)

    def test_interior_ne_found(self):
        table = linear_table(crossing=6)
        equilibria = table.nash_equilibria()
        assert equilibria, "an NE must exist (§4.1)"
        assert all(4 <= k <= 8 for k in equilibria)

    def test_ne_condition_definition(self):
        """§4.4: at an NE, no BBR flow gains from switching to CUBIC and
        no CUBIC flow gains from switching to BBR."""
        table = linear_table()
        for k in table.nash_equilibria():
            if k > 0:
                assert table.lambda_b[k] >= table.lambda_a[k - 1]
            if k < table.n_flows:
                assert table.lambda_a[k] >= table.lambda_b[k + 1]

    def test_all_bbr_ne_when_always_advantaged(self):
        """Case 1 of §4.1: if AB never crosses fair share, the NE is
        all-BBR (point B)."""
        n = 10
        table = linear_table(n=n, crossing=15)
        assert table.nash_equilibria() == [n]

    def test_tolerance_widens_ne_set(self):
        table = linear_table()
        strict = set(table.nash_equilibria())
        loose = set(table.nash_equilibria(tolerance=2.0))
        assert strict <= loose

    def test_best_response_converges_to_ne(self):
        table = linear_table(crossing=6)
        for start in (0, 3, 10):
            path = table.best_response_path(start)
            assert table.is_nash(path[-1])

    def test_best_response_moves_toward_crossing(self):
        table = linear_table(crossing=6)
        path = table.best_response_path(0)
        assert path == sorted(path)  # Monotone rightward from 0.

    def test_best_response_step_at_ne_is_fixed_point(self):
        table = linear_table()
        ne = table.nash_equilibria()[0]
        assert table.best_response_step(ne) == ne


class TestNeExistenceConditions:
    def test_bbr_like_game_satisfies_both(self):
        from repro.core.game import ne_existence_conditions

        table = linear_table(n=10, capacity=100.0, crossing=6)
        # Point B: the all-B distribution splits the link fairly.
        table.lambda_b[-1] = 10.0
        flags = ne_existence_conditions(table, capacity=100.0)
        assert flags["disproportionate_share"]
        assert flags["fills_link_alone"]
        assert flags["ne_expected"]
        assert table.nash_equilibria()  # The conclusion actually holds.

    def test_copa_like_game_fails_condition_one(self):
        from repro.core.game import ne_existence_conditions

        n, capacity = 10, 100.0
        fair = capacity / n
        # Always below fair share when mixed; fair share when alone.
        lambda_b = [0.0] + [fair * 0.3] * (n - 1) + [fair]
        lambda_a = [
            (capacity - b * k) / (n - k) if k < n else 0.0
            for k, b in enumerate(lambda_b)
        ]
        table = ThroughputTable(
            n_flows=n, lambda_a=lambda_a, lambda_b=lambda_b
        )
        flags = ne_existence_conditions(table, capacity)
        assert not flags["disproportionate_share"]
        assert flags["fills_link_alone"]
        assert not flags["ne_expected"]

    def test_validation(self):
        from repro.core.game import ne_existence_conditions

        with pytest.raises(ValueError):
            ne_existence_conditions(linear_table(), capacity=0.0)


class TestBisectNash:
    def test_matches_exhaustive_enumeration(self):
        for crossing in (2, 5, 8):
            table = linear_table(crossing=crossing)
            fn = lambda k: (table.lambda_a[k], table.lambda_b[k])
            fast, _cache = bisect_nash(table.n_flows, fn)
            slow = table.nash_equilibria()
            assert set(fast) == set(slow)

    def test_uses_logarithmic_evaluations(self):
        calls = []
        table = linear_table(n=64, crossing=40)

        def fn(k):
            calls.append(k)
            return (table.lambda_a[k], table.lambda_b[k])

        bisect_nash(64, fn)
        assert len(set(calls)) <= 16  # ≪ 65 exhaustive evaluations.

    def test_extreme_all_bbr(self):
        table = linear_table(n=10, crossing=100)
        fn = lambda k: (table.lambda_a[k], table.lambda_b[k])
        equilibria, _ = bisect_nash(10, fn)
        assert equilibria == [10]


class TestGroupGame:
    def make_game(self, sizes=(2, 2), favour_group=0):
        """Strategy B is better in ``favour_group`` until half the group
        switched; elsewhere strategy A dominates."""
        groups = [
            FlowGroup(rtt=0.01 * (g + 1), size=s)
            for g, s in enumerate(sizes)
        ]

        def payoff(state):
            out = []
            for g, size in enumerate(sizes):
                k = state[g]
                if g == favour_group:
                    b = 10.0 - 4.0 * k
                    a = 5.0
                else:
                    b = 1.0
                    a = 5.0
                out.append((a, b))
            return out

        return GroupGame(groups=groups, payoff=payoff)

    def test_states_enumeration(self):
        game = self.make_game(sizes=(2, 3))
        states = list(game.states())
        assert len(states) == 3 * 4
        assert (0, 0) in states and (2, 3) in states

    def test_ne_in_favoured_group_only(self):
        game = self.make_game(sizes=(2, 2), favour_group=0)
        equilibria = game.nash_equilibria()
        assert equilibria
        for state in equilibria:
            assert state[1] == 0  # Group 1 never switches.
            # Group 0 stops where switching stops paying: b(k+1) ≤ a.
            assert state[0] in (1, 2)

    def test_best_response_reaches_ne(self):
        game = self.make_game()
        path = game.best_response_path((0, 0))
        assert game.is_nash(path[-1])

    def test_payoffs_cached(self):
        calls = []

        def payoff(state):
            calls.append(state)
            return [(1.0, 1.0), (1.0, 1.0)]

        game = GroupGame(
            groups=[FlowGroup(0.01, 2), FlowGroup(0.02, 2)],
            payoff=payoff,
        )
        game.is_nash((1, 1))
        game.is_nash((1, 1))
        assert len(calls) == len(set(calls))

    def test_group_validation(self):
        with pytest.raises(ValueError):
            FlowGroup(rtt=0.0, size=2)
        with pytest.raises(ValueError):
            FlowGroup(rtt=0.01, size=0)


class TestNeExistenceBoundaries:
    def test_endpoints_do_not_count_as_disproportionate(self):
        # Condition 1 quantifies over *mixed* distributions (1..n-1):
        # a challenger that only reaches fair share when it has the
        # whole link to itself shows no disproportionate share.
        from repro.core.game import ne_existence_conditions

        n, capacity = 10, 100.0
        fair = capacity / n
        lambda_b = [0.0] + [fair * 0.5] * (n - 1) + [fair * 2]
        lambda_a = [
            (capacity - lambda_b[k] * k) / (n - k) if k < n else 0.0
            for k in range(n + 1)
        ]
        flags = ne_existence_conditions(
            ThroughputTable(
                n_flows=n, lambda_a=lambda_a, lambda_b=lambda_b
            ),
            capacity,
        )
        assert not flags["disproportionate_share"]
        assert flags["fills_link_alone"]
        assert not flags["ne_expected"]

    def test_fills_link_alone_boundary_is_inclusive(self):
        # The 80%-utilization cut is >=: exactly 0.8 x fair passes,
        # epsilon below fails.
        from repro.core.game import ne_existence_conditions

        n, capacity = 10, 100.0
        fair = capacity / n

        def table_with_all_b(value):
            lambda_b = [0.0] + [fair * 1.5] * (n - 1) + [value]
            lambda_a = [
                (capacity - lambda_b[k] * k) / (n - k) if k < n else 0.0
                for k in range(n + 1)
            ]
            return ThroughputTable(
                n_flows=n, lambda_a=lambda_a, lambda_b=lambda_b
            )

        at = ne_existence_conditions(
            table_with_all_b(0.8 * fair), capacity
        )
        below = ne_existence_conditions(
            table_with_all_b(0.8 * fair - 1e-9), capacity
        )
        assert at["fills_link_alone"] and at["ne_expected"]
        assert not below["fills_link_alone"]
        assert not below["ne_expected"]


class TestBisectNashBracketFailure:
    def test_no_bracket_when_challenger_never_wins(self):
        # advantage(1) <= 0 means the bisection bracket never forms:
        # the search must fall back to the all-A corner, not crash.
        n, capacity = 12, 120.0
        fair = capacity / n
        lambda_b = [0.0] + [fair * 0.4] * n
        lambda_a = [
            (capacity - lambda_b[k] * k) / (n - k) if k < n else 0.0
            for k in range(n + 1)
        ]
        table = ThroughputTable(
            n_flows=n, lambda_a=lambda_a, lambda_b=lambda_b
        )
        calls = []

        def fn(k):
            calls.append(k)
            return (table.lambda_a[k], table.lambda_b[k])

        equilibria, cache = bisect_nash(n, fn)
        assert equilibria == [0]
        # The corner fallback inspects a constant-size neighborhood.
        assert len(cache) <= 5
        assert set(calls) == set(cache)

    def test_tiny_games_enumerate_exhaustively(self):
        # n <= 2 skips bisection entirely and checks every k.
        fn = lambda k: (1.0, 2.0 if k else 0.0)  # noqa: E731
        equilibria, cache = bisect_nash(2, fn)
        assert equilibria == [2]
        assert set(cache) == {0, 1, 2}
