"""FlowStats: binned throughput accounting and RTT tracking."""

import pytest

from repro.sim.stats import FlowStats


def test_throughput_over_interval():
    s = FlowStats(0, bin_width=0.1)
    s.record_delivery(0.05, 1000)
    s.record_delivery(0.15, 1000)
    s.record_delivery(0.95, 2000)
    assert s.throughput(0.0, 1.0) == pytest.approx(4000.0)


def test_throughput_respects_window():
    s = FlowStats(0, bin_width=0.1)
    s.record_delivery(0.05, 5000)   # Inside warmup.
    s.record_delivery(1.05, 1000)
    assert s.throughput(1.0, 2.0) == pytest.approx(1000.0)


def test_throughput_empty_interval_raises():
    s = FlowStats(0)
    with pytest.raises(ValueError):
        s.throughput(1.0, 1.0)


def test_throughput_series_length_and_values():
    s = FlowStats(0, bin_width=0.5)
    s.record_delivery(0.1, 500)
    s.record_delivery(1.6, 1500)
    series = s.throughput_series(2.0)
    assert len(series) == 4
    assert series[0] == pytest.approx(1000.0)  # 500 B / 0.5 s.
    assert series[3] == pytest.approx(3000.0)


def test_rtt_statistics():
    s = FlowStats(0)
    for rtt in (0.05, 0.04, 0.06):
        s.record_rtt(rtt)
    assert s.min_rtt == 0.04
    assert s.max_rtt == 0.06
    assert s.mean_rtt == pytest.approx(0.05)


def test_mean_rtt_none_without_samples():
    assert FlowStats(0).mean_rtt is None


def test_loss_rate():
    s = FlowStats(0)
    s.sent_packets = 100
    s.record_loss(5)
    assert s.loss_rate == pytest.approx(0.05)


def test_loss_rate_zero_without_sends():
    assert FlowStats(0).loss_rate == 0.0


def test_invalid_bin_width():
    with pytest.raises(ValueError):
        FlowStats(0, bin_width=0.0)


def test_warmup_edge_binning_regression():
    # 0.3 / 0.1 == 2.9999999999999996, so a plain int() edge pulls the
    # window one bin early and leaks warm-up deliveries into the
    # measurement (the paper's warmup=duration/6 hits this constantly).
    s = FlowStats(0, bin_width=0.1)
    s.record_delivery(0.25, 9000)  # Inside warmup: bin 2.
    s.record_delivery(0.31, 3000)  # Measured: bin 3.
    assert s.throughput(0.3, 0.6) == pytest.approx(3000.0 / 0.3)


def test_warmup_edge_binning_many_edges():
    # Every duration/6 warm-up edge used by the figures must bin exactly.
    s = FlowStats(0, bin_width=0.1)
    for duration in (60.0, 90.0, 120.0):
        warmup = duration / 6.0
        s._bins.clear()
        s.record_delivery(warmup - 0.05, 7777)   # Last warmup bin.
        s.record_delivery(warmup + 0.05, 1200)   # First measured bin.
        expected = 1200.0 / (duration - warmup)
        assert s.throughput(warmup, duration) == pytest.approx(expected)


def test_throughput_series_edge_binning():
    # int(0.3 / 0.1) == 2 would silently drop the final bin.
    s = FlowStats(0, bin_width=0.1)
    s.record_delivery(0.25, 500)
    series = s.throughput_series(0.3)
    assert len(series) == 3
    assert series[2] == pytest.approx(5000.0)


def test_edge_binning_truncates_between_bins():
    # A genuinely mid-bin edge still truncates (no over-rounding).
    s = FlowStats(0, bin_width=0.1)
    assert s._edge_bin(0.34999) == 3
    assert s._edge_bin(0.35001) == 3
