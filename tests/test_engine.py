"""Discrete-event loop: ordering, determinism, control."""

import pytest

from repro.sim.engine import EventLoop


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.call_at(2.0, lambda: order.append("b"))
    loop.call_at(1.0, lambda: order.append("a"))
    loop.call_at(3.0, lambda: order.append("c"))
    loop.run_until(10.0)
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    loop = EventLoop()
    order = []
    for name in "abc":
        loop.call_at(1.0, lambda n=name: order.append(n))
    loop.run_until(2.0)
    assert order == ["a", "b", "c"]


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    fired = []
    loop.call_at(5.0, lambda: fired.append(5))
    loop.call_at(15.0, lambda: fired.append(15))
    loop.run_until(10.0)
    assert fired == [5]
    assert loop.now == 10.0
    assert loop.pending() == 1


def test_event_at_exact_deadline_runs():
    loop = EventLoop()
    fired = []
    loop.call_at(10.0, lambda: fired.append(1))
    loop.run_until(10.0)
    assert fired == [1]


def test_clock_advances_to_deadline_when_queue_drains():
    loop = EventLoop()
    loop.run_until(42.0)
    assert loop.now == 42.0


def test_call_later_is_relative():
    loop = EventLoop()
    times = []
    loop.call_at(
        5.0, lambda: loop.call_later(2.0, lambda: times.append(loop.now))
    )
    loop.run_until(10.0)
    assert times == [7.0]


def test_cannot_schedule_in_the_past():
    loop = EventLoop()
    loop.call_at(5.0, lambda: None)
    loop.run_until(5.0)
    with pytest.raises(ValueError):
        loop.call_at(3.0, lambda: None)


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.call_later(-1.0, lambda: None)


def test_events_can_schedule_events():
    loop = EventLoop()
    hits = []

    def recurse():
        hits.append(loop.now)
        if len(hits) < 5:
            loop.call_later(1.0, recurse)

    loop.call_at(0.0, recurse)
    loop.run_until(100.0)
    assert hits == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_stop_halts_processing():
    loop = EventLoop()
    hits = []

    def first():
        hits.append(1)
        loop.stop()

    loop.call_at(1.0, first)
    loop.call_at(2.0, lambda: hits.append(2))
    loop.run_until(10.0)
    assert hits == [1]
    assert loop.pending() == 1


def test_run_all_counts_events():
    loop = EventLoop()
    for i in range(7):
        loop.call_at(float(i), lambda: None)
    assert loop.run_all() == 7


def test_run_all_guards_against_runaway():
    loop = EventLoop()

    def forever():
        loop.call_later(0.001, forever)

    loop.call_at(0.0, forever)
    with pytest.raises(RuntimeError):
        loop.run_all(max_events=100)


def test_peek_time():
    loop = EventLoop()
    assert loop.peek_time() is None
    loop.call_at(3.5, lambda: None)
    assert loop.peek_time() == 3.5
