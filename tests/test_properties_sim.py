"""Property-based tests for the simulators (hypothesis).

Shorter horizons than the scenario tests — the point is invariants under
*randomized* configurations, not steady-state accuracy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluidsim import FluidSpec, run_fluid
from repro.sim.engine import EventLoop
from repro.util.config import LinkConfig

CC_NAMES = ("cubic", "reno", "bbr", "bbr2", "copa", "vivace", "vegas")


@st.composite
def flow_mixes(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return [
        FluidSpec(draw(st.sampled_from(CC_NAMES)))
        for _ in range(n)
    ]


@st.composite
def links(draw):
    return LinkConfig.from_mbps_ms(
        draw(st.floats(min_value=5, max_value=200)),
        draw(st.floats(min_value=5, max_value=100)),
        draw(st.floats(min_value=1.2, max_value=20)),
    )


@given(links(), flow_mixes(), st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_fluid_conservation_and_bounds(link, specs, seed):
    """For any mix of any CCAs on any link: throughput never exceeds
    capacity, the queue respects the buffer, per-flow rates are
    non-negative, and delivered bytes are finite."""
    result = run_fluid(
        link, specs, duration=15, seed=seed, start_jitter=0.5
    )
    assert result.aggregate_throughput() <= link.capacity * 1.001
    assert 0 <= result.mean_queuing_delay <= link.max_queuing_delay * 1.001
    for flow in result.flows:
        assert flow.throughput >= 0
        assert flow.delivered_bytes >= 0
        assert 0 <= flow.loss_rate <= 1


@given(links(), flow_mixes(), st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_fluid_determinism(link, specs, seed):
    """Same seed → bit-identical outcome (the reproducibility contract
    behind the paper's multi-trial methodology)."""
    a = run_fluid(link, specs, duration=10, seed=seed, start_jitter=0.5)
    b = run_fluid(link, specs, duration=10, seed=seed, start_jitter=0.5)
    assert [f.throughput for f in a.flows] == [
        f.throughput for f in b.flows
    ]


@given(
    st.lists(
        st.floats(min_value=0, max_value=100),
        min_size=1,
        max_size=100,
    )
)
def test_event_loop_runs_any_schedule_in_order(times):
    loop = EventLoop()
    fired = []
    for t in times:
        loop.call_at(t, lambda t=t: fired.append(t))
    loop.run_until(101.0)
    assert fired == sorted(times)
    assert len(fired) == len(times)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=5.0),  # delay
            st.integers(min_value=0, max_value=1000),  # payload id
        ),
        min_size=1,
        max_size=50,
    )
)
def test_delay_line_is_order_preserving(items):
    """A FIFO delay line delivers everything, in send order, each after
    exactly its delay."""
    from repro.sim.link import DelayLine

    loop = EventLoop()
    got = []
    line = DelayLine(loop, 0.5, got.append)
    for gap, payload in items:
        loop.call_at(gap, lambda p=payload: line.send(p))
    loop.run_until(100.0)
    assert len(got) == len(items)
