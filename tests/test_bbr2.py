"""BBRv2: loss-bounded in-flight cap and gentler probing (§4.6)."""

import pytest

from repro.cc.bbr2 import (
    BETA,
    CRUISE,
    HEADROOM,
    LOSS_THRESH,
    PROBE_RTT,
    STARTUP,
    BBRv2,
)


def settle(d, seconds=2.0):
    """Run a driver until the controller reaches steady cruising."""
    d.run_for(seconds, delivery_rate=d.rate, in_flight=10_000)


def test_starts_in_startup():
    assert BBRv2().state == STARTUP


def test_reacts_to_loss_unlike_bbrv1(driver_factory):
    cc = BBRv2(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    settle(d)
    assert cc.inflight_hi == float("inf")
    # A lossy round: drive the per-round loss rate over LOSS_THRESH, then
    # complete at least one packet-timed round so the check runs.
    for _ in range(5):
        d.lose(packets=10, in_flight=50_000)
        d.acks(5, in_flight=50_000)
    d.acks(120, in_flight=50_000)
    assert cc.inflight_hi < float("inf")


def test_inflight_hi_cut_by_beta(driver_factory):
    cc = BBRv2(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    settle(d)
    d.lose(packets=20, in_flight=60_000)
    d.acks(120, in_flight=60_000)  # Complete the round.
    if cc.inflight_hi < float("inf"):
        # Bound reflects the (1 − β) cut of the in-flight reference.
        assert cc.inflight_hi <= (60_000 + 20_000) * (1 - BETA) * 1.01


def test_startup_loss_caps_pipe(driver_factory):
    cc = BBRv2(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.acks(5)
    assert cc.state == STARTUP
    d.lose(packets=5, in_flight=30_000)
    assert cc.full_pipe
    assert cc.inflight_hi <= 30_000


def test_cruise_keeps_headroom(driver_factory):
    cc = BBRv2(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    settle(d)
    cc.inflight_hi = 40_000
    # Force cruising and check the cap.
    d.run_for(0.5, in_flight=int(HEADROOM * 40_000))
    if cc.state == CRUISE:
        assert cc.cwnd <= HEADROOM * cc.inflight_hi * 1.001


def test_loss_threshold_documented_value():
    assert LOSS_THRESH == pytest.approx(0.02)


def test_probe_rtt_cadence_is_five_seconds(driver_factory):
    from repro.cc.bbr2 import PROBE_RTT_INTERVAL

    assert PROBE_RTT_INTERVAL == 5.0


def test_probe_rtt_floor_is_half_bdp(driver_factory):
    cc = BBRv2(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    settle(d)
    d.run_for(5.5, rtt=0.08, in_flight=10_000)
    if cc.state == PROBE_RTT:
        assert cc.cwnd >= cc.min_cwnd
        assert cc.cwnd <= 0.5 * cc.bdp(1.0) * 1.1 + cc.min_cwnd


def test_less_aggressive_than_bbr_in_flight(driver_factory):
    """After equivalent loss histories BBRv2 keeps less in flight."""
    from repro.cc.bbr import BBRv1

    v1 = BBRv1(mss=1000)
    v2 = BBRv2(mss=1000)
    d1 = driver_factory(v1, rate=1.25e6, rtt=0.04)
    d2 = driver_factory(v2, rate=1.25e6, rtt=0.04)
    for d in (d1, d2):
        d.run_for(2.0, delivery_rate=1.25e6, in_flight=10_000)
    for d, cc in ((d1, v1), (d2, v2)):
        for _ in range(5):
            d.lose(packets=10, in_flight=50_000)
            d.acks(10, in_flight=50_000)
    assert v2.cwnd <= v1.cwnd
