"""LinkConfig derived quantities and validation."""

import pytest

from repro.util.config import LinkConfig


def test_from_mbps_ms():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    assert link.capacity == pytest.approx(12.5e6)
    assert link.rtt == pytest.approx(0.04)
    assert link.buffer_bdp == 5


def test_bdp_bytes():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    # 100 Mbps × 40 ms = 500 KB.
    assert link.bdp_bytes == pytest.approx(500_000)


def test_bdp_packets():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    assert link.bdp_packets == pytest.approx(500_000 / 1500)


def test_buffer_bytes_scales_with_bdp():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    assert link.buffer_bytes == pytest.approx(5 * link.bdp_bytes)


def test_buffer_packets():
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    assert link.buffer_packets == pytest.approx(3 * 500_000 / 1500)


def test_reporting_properties():
    link = LinkConfig.from_mbps_ms(50, 80, 2)
    assert link.capacity_mbps == pytest.approx(50)
    assert link.rtt_ms == pytest.approx(80)


def test_max_queuing_delay():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    # Full buffer drains in buffer_bdp × rtt.
    assert link.max_queuing_delay == pytest.approx(5 * 0.04)


def test_with_buffer_bdp_returns_new_config():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    other = link.with_buffer_bdp(10)
    assert other.buffer_bdp == 10
    assert link.buffer_bdp == 5  # Original untouched (frozen).
    assert other.capacity == link.capacity


def test_with_rtt():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    other = link.with_rtt(0.08)
    assert other.rtt == 0.08
    assert other.bdp_bytes == pytest.approx(2 * link.bdp_bytes)


def test_describe_mentions_key_parameters():
    text = LinkConfig.from_mbps_ms(100, 40, 5).describe()
    assert "100" in text and "40" in text and "5" in text


@pytest.mark.parametrize(
    "kwargs",
    [
        {"capacity": 0, "rtt": 0.04, "buffer_bdp": 5},
        {"capacity": -1, "rtt": 0.04, "buffer_bdp": 5},
        {"capacity": 1e6, "rtt": 0, "buffer_bdp": 5},
        {"capacity": 1e6, "rtt": 0.04, "buffer_bdp": 0},
        {"capacity": 1e6, "rtt": 0.04, "buffer_bdp": -2},
        {"capacity": 1e6, "rtt": 0.04, "buffer_bdp": 5, "mss": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        LinkConfig(**kwargs)


def test_frozen():
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    with pytest.raises(AttributeError):
        link.capacity = 1.0
