"""Cross-module integration: model vs. simulators (the paper's §3 checks,
at test-sized operating points).

These are the slowest tests in the suite (a few seconds each); they pin
the qualitative agreements that the benchmark harness then measures at
full scale.
"""

import pytest

from repro.core.multi_flow import predict_multi_flow
from repro.core.two_flow import predict_two_flow
from repro.core.ware import ware_prediction
from repro.experiments.runner import run_mix
from repro.fluidsim import FluidSpec, run_fluid
from repro.util.config import LinkConfig


@pytest.mark.parametrize("bdp", [2, 5])
def test_packet_sim_tracks_model_shape(bdp):
    """1 CUBIC vs 1 BBR: the packet simulator lands near the model.

    The model assumes large windows, so the link must have a reasonable
    BDP in packets (here 67); at paper scale (50 Mbps / 40 ms / 120 s)
    agreement tightens to a few percent — see the fig3 benchmark.
    """
    link = LinkConfig.from_mbps_ms(20, 40, bdp)
    pred = predict_two_flow(link)
    result = run_mix(
        link, [("cubic", 1), ("bbr", 1)], duration=90, backend="packet"
    )
    measured = result.per_flow["bbr"] / link.capacity
    assert measured == pytest.approx(pred.bbr_fraction, abs=0.15)


def test_packet_sim_bbr_share_declines_with_buffer():
    """The Figure-3 shape, end to end on the packet simulator."""
    shares = []
    for bdp in (1.5, 4, 12):
        link = LinkConfig.from_mbps_ms(10, 20, bdp)
        result = run_mix(
            link, [("cubic", 1), ("bbr", 1)], duration=60, backend="packet"
        )
        shares.append(result.per_flow["bbr"])
    assert shares[0] > shares[1] > shares[2]


def test_model_beats_ware_against_packet_sim():
    """§3.1: the paper's model is more accurate than Ware et al."""
    errors_model, errors_ware = [], []
    for bdp in (2, 5, 12):
        link = LinkConfig.from_mbps_ms(10, 20, bdp)
        result = run_mix(
            link, [("cubic", 1), ("bbr", 1)], duration=60, backend="packet"
        )
        actual = result.per_flow["bbr"]
        errors_model.append(
            abs(predict_two_flow(link).bbr_bandwidth - actual)
        )
        errors_ware.append(
            abs(ware_prediction(link, duration=60).bbr_bandwidth - actual)
        )
    assert sum(errors_model) < sum(errors_ware)


def test_fluid_sim_multi_flow_lands_near_predicted_region():
    """§3.2 at test scale: 3v3 per-flow BBR throughput vs the region."""
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    pred = predict_multi_flow(link, 3, 3)
    result = run_mix(
        link,
        [("cubic", 3), ("bbr", 3)],
        duration=120,
        backend="fluid",
        trials=3,
        seed=11,
    )
    lo, hi = pred.per_flow_bbr_bounds()
    slack = 0.25 * (hi - lo) + 0.05 * link.capacity / 3
    assert lo - slack <= result.per_flow["bbr"] <= hi + slack


def test_fluid_sim_diminishing_returns():
    """§3.3's headline trend, end to end on the fluid simulator."""
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    values = []
    for n_bbr in (1, 4, 8):
        result = run_mix(
            link,
            [("cubic", 8 - n_bbr if n_bbr < 8 else 0), ("bbr", n_bbr)],
            duration=120,
            backend="fluid",
            seed=5,
        )
        values.append(result.per_flow["bbr"])
    assert values[0] > values[1] > values[2]


def test_empirical_ne_exists_and_is_mixed():
    """§4.4 at test scale: an interior NE exists for a moderate buffer."""
    from repro.core.game import bisect_nash
    from repro.experiments.runner import distribution_throughput_fn

    link = LinkConfig.from_mbps_ms(100, 40, 5)
    n = 8
    fn = distribution_throughput_fn(
        link, n, duration=120, backend="fluid", seed=23
    )
    equilibria, _ = bisect_nash(n, fn)
    assert equilibria
    assert any(0 < k < n for k in equilibria)


def test_queuing_delay_flat_until_all_bbr():
    """Figure 8b: queuing delay barely moves with the BBR share (until
    the all-BBR point, where the loss-based buffer-filler disappears)."""
    link = LinkConfig.from_mbps_ms(100, 40, 2)
    delays = []
    for n_bbr in (0, 3, 6, 9, 10):
        result = run_mix(
            link,
            [("cubic", 10 - n_bbr), ("bbr", n_bbr)],
            duration=90,
            backend="fluid",
            seed=2,
        )
        delays.append(result.mean_queuing_delay)
    mixed = delays[:-1]
    spread = max(mixed) - min(mixed)
    assert spread < 0.5 * max(mixed)
    assert delays[-1] < 0.8 * max(mixed)


def test_all_bbr_fair_share_anchor():
    """§4.1 point B: the all-BBR distribution averages to fair share."""
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    n = 6
    result = run_fluid(
        link, [FluidSpec("bbr")] * n, duration=120, warmup=30
    )
    fair = link.capacity / n
    assert result.mean_throughput("bbr") == pytest.approx(fair, rel=0.15)
