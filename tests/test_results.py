"""Figure containers and ASCII rendering."""

import pytest

from repro.experiments.ascii_plot import render_plot, render_table
from repro.experiments.results import FigureResult, Series


class TestSeries:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1.0])

    def test_at_exact(self):
        s = Series("s", [1, 2, 3], [10.0, 20.0, 30.0])
        assert s.at(2) == 20.0

    def test_at_missing(self):
        s = Series("s", [1], [1.0])
        with pytest.raises(KeyError):
            s.at(9)


class TestFigureResult:
    def make(self):
        fig = FigureResult(
            figure_id="figX",
            title="test figure",
            xlabel="buffer (BDP)",
            ylabel="Mbps",
        )
        fig.add("model", [1, 2, 3], [30.0, 25.0, 20.0])
        fig.add("actual", [1, 2, 3], [29.0, 24.0, 21.0])
        return fig

    def test_get_by_name(self):
        fig = self.make()
        assert fig.get("model").y == [30.0, 25.0, 20.0]
        with pytest.raises(KeyError):
            fig.get("nope")

    def test_names(self):
        assert self.make().names == ["model", "actual"]

    def test_render_contains_title_and_data(self):
        text = self.make().render()
        assert "figX" in text
        assert "model" in text and "actual" in text
        assert "30.00" in text

    def test_render_empty_figure(self):
        fig = FigureResult("f", "t", "x", "y")
        assert "f" in fig.render()

    def test_csv_roundtrip(self, tmp_path):
        fig = self.make()
        path = tmp_path / "fig.csv"
        fig.to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "series,buffer (BDP),Mbps"
        assert len(lines) == 1 + 6
        assert "model,1,30.0" in lines

    def test_summary_means(self):
        summary = self.make().summary()
        assert summary["model"] == pytest.approx(25.0)
        assert summary["actual"] == pytest.approx(74 / 3)


class TestAsciiPlot:
    def test_plot_contains_markers_and_legend(self):
        text = render_plot(
            [("a", [0, 1, 2], [0.0, 1.0, 2.0]), ("b", [0, 1, 2], [2, 1, 0])],
            xlabel="x",
            ylabel="y",
        )
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "|" in text

    def test_plot_handles_constant_series(self):
        text = render_plot([("flat", [0, 1], [5.0, 5.0])])
        assert "flat" in text

    def test_plot_no_data(self):
        assert render_plot([("empty", [], [])]) == "(no data)"

    def test_plot_skips_nan(self):
        text = render_plot([("s", [0, 1], [1.0, float("nan")])])
        assert "s" in text

    def test_table_aligns_union_of_x(self):
        text = render_table(
            "x",
            [("a", [1, 2], [1.0, 2.0]), ("b", [2, 3], [20.0, 30.0])],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # Header + x ∈ {1, 2, 3}.
        assert "-" in lines[1]  # b has no value at x=1.

    def test_table_averages_duplicate_x(self):
        text = render_table("x", [("ne", [5, 5, 5], [10.0, 14.0, 12.0])])
        assert "12.00" in text
