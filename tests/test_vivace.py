"""PCC Vivace: monitor intervals and utility-gradient rate control."""

import pytest

from repro.cc.vivace import EPSILON, Vivace


def test_utility_monotone_in_rate_without_penalties():
    cc = Vivace()
    assert cc.utility(2e6, 0.0, 0.0) > cc.utility(1e6, 0.0, 0.0)


def test_utility_penalizes_loss():
    cc = Vivace()
    assert cc.utility(1e6, 0.0, 0.10) < cc.utility(1e6, 0.0, 0.0)


def test_latency_variant_penalizes_rtt_gradient():
    cc = Vivace(latency_coeff=900.0)
    assert cc.utility(1e6, 0.05, 0.0) < cc.utility(1e6, 0.0, 0.0)


def test_default_variant_is_loss_based():
    """Vivace-Loss (b = 0) reproduces the paper's Figure-7 behaviour."""
    cc = Vivace()
    assert cc.latency_coeff == 0.0
    assert cc.utility(1e6, 0.05, 0.0) == cc.utility(1e6, 0.0, 0.0)


def test_utility_zero_at_zero_rate():
    assert Vivace().utility(0.0, 0.0, 0.0) == 0.0


def test_rate_grows_on_clean_path(driver_factory):
    cc = Vivace(mss=1000, initial_rate=125_000.0)
    d = driver_factory(cc, rate=125_000.0, rtt=0.04)
    # Self-clocked pipe: delivery follows the pacer's probe rate.
    for _ in range(5000):
        d.rate = max(cc.pacing_rate or 125_000.0, 15_000.0)
        d.ack(delivery_rate=d.rate)
    assert cc.rate > 125_000.0


def test_probe_rates_bracket_base_rate(driver_factory):
    cc = Vivace(mss=1000, initial_rate=1e6)
    assert cc._probe_rate() == pytest.approx(1e6 * (1 + EPSILON))
    cc._mi_phase = 1
    assert cc._probe_rate() == pytest.approx(1e6 * (1 - EPSILON))


def test_amplifier_grows_with_consistent_direction(driver_factory):
    cc = Vivace(mss=1000, initial_rate=125_000.0)
    d = driver_factory(cc, rate=125_000.0, rtt=0.04)
    for _ in range(5000):
        d.rate = max(cc.pacing_rate or 125_000.0, 15_000.0)
        d.ack(delivery_rate=d.rate)
    assert cc._amplifier > 1.0


def test_losses_recorded_into_mi(driver_factory):
    cc = Vivace(mss=1000)
    d = driver_factory(cc)
    d.acks(3)
    d.lose(packets=4)
    assert cc._mi_lost == 4


def test_cwnd_tracks_pacing(driver_factory):
    cc = Vivace(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.run_for(1.0)
    assert cc.cwnd >= 2.0 * cc.pacing_rate * 0.04 * 0.5


def test_invalid_initial_rate():
    with pytest.raises(ValueError):
        Vivace(initial_rate=0.0)


def test_rate_floor_never_violated(driver_factory):
    from repro.cc.vivace import MIN_RATE

    cc = Vivace(mss=1000, initial_rate=125_000.0, latency_coeff=900.0)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    # Punish relentlessly with rising RTT: rate must stop at the floor.
    rtt = 0.04
    for _ in range(2000):
        rtt += 0.0005
        d.ack(rtt=rtt)
    assert cc.rate >= MIN_RATE
