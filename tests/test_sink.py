"""Streaming result pipeline: sinks, bounded memory, crash windows.

The contracts under test (see ``docs/CAMPAIGNS.md``):

* ``CsvSink`` streamed output is byte-identical to the seed
  collect-then-write ``_write_csv``, including first-seen column order,
  column growth mid-stream, and the empty-header zero-row case.
* ``CampaignSink`` reorders completion-order arrivals into unit order
  and buffers only the out-of-order frontier.
* A campaign killed in *any* window — after the journal fsync but
  before the CSV flush included — resumes to a byte-identical
  ``results.csv``.
* Peak memory of a sweep campaign is flat in unit count: growing the
  campaign ~10x must not grow the per-unit high-water mark.
"""

import csv
import filecmp
import gzip
import json
import tracemalloc

import pytest

from repro.campaign import (
    CampaignSink,
    CsvSink,
    Journal,
    JsonlSink,
    SinkError,
    expand_units,
    parse_spec,
    resolve_artifact,
    run_campaign,
)
from repro.campaign.run import UnitOutcome, _write_csv, iter_units
from repro.exec import Engine, ResultCache

BASE = {
    "name": "t",
    "link": {"bandwidth_mbps": 20.0, "rtt_ms": 20.0, "buffer_bdp": 1.0},
    "defaults": {
        "duration": 5.0,
        "backend": "fluid",
        "mix": "cubic:1,bbr:1",
    },
    "axes": [{"name": "buffer_bdp", "values": [1, 2, 3]}],
}


def _spec(**overrides):
    data = json.loads(json.dumps(BASE))  # Deep copy.
    data.update(overrides)
    return parse_spec(data)


def _outcome(index, rows, stage="sweep"):
    return UnitOutcome(
        unit_id=f"u{index}",
        index=index,
        stage=stage,
        rows=tuple(rows),
        wall_s=0.01,
        from_journal=False,
    )


# -- CsvSink byte-equality ---------------------------------------------------


ROWSETS = [
    # Uniform columns.
    [
        [{"a": 1, "b": 2.5}],
        [{"a": 3, "b": 4.5}],
    ],
    # Column growth mid-stream (unit 1 introduces "c").
    [
        [{"a": 1}],
        [{"a": 2, "c": "x"}],
        [{"c": "y", "a": 3}],
    ],
    # Ragged rows + a unit with no rows at all.
    [
        [{"a": 1, "b": 2}],
        [],
        [{"b": 5}, {"a": 6, "d": "q,uote"}],
    ],
    # Zero rows everywhere: header only.
    [[], []],
    # First units empty, columns learned late.
    [
        [],
        [{"z": 0, "a": 1}],
    ],
]


@pytest.mark.parametrize("rowsets", ROWSETS)
def test_csv_sink_matches_seed_writer(tmp_path, rowsets):
    outcomes = [_outcome(i, rows) for i, rows in enumerate(rowsets)]
    seed_path = tmp_path / "seed.csv"
    _write_csv(seed_path, outcomes)

    sink = CsvSink(tmp_path / "stream.csv")
    for outcome in outcomes:
        sink.append(outcome.rows)
        sink.flush()
    sink.close()

    assert (tmp_path / "stream.csv").read_bytes() == seed_path.read_bytes()
    assert sink.rows_written == sum(len(r) for r in rowsets)


def test_csv_sink_widen_streams_through_temp_file(tmp_path):
    """Column growth rewrites the file row-at-a-time and keeps going."""
    sink = CsvSink(tmp_path / "w.csv")
    sink.append([{"a": i} for i in range(50)])
    sink.append([{"a": 50, "b": "new"}])
    sink.close()
    with open(tmp_path / "w.csv", newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["a", "b"]
    assert rows[1] == ["0", ""]  # Old rows padded to the new width.
    assert rows[-1] == ["50", "new"]
    assert not list(tmp_path.glob("*.tmp.*"))


def test_csv_sink_rejects_rows_after_close(tmp_path):
    sink = CsvSink(tmp_path / "c.csv")
    sink.close()
    with pytest.raises(SinkError, match="closed"):
        sink.append([{"a": 1}])


def test_jsonl_sink_round_trips_rows(tmp_path):
    sink = JsonlSink(tmp_path / "r.jsonl")
    rows = [{"a": 1, "b": "x"}, {"b": "y", "a": 2}]
    sink.append(rows)
    sink.close()
    lines = (tmp_path / "r.jsonl").read_text().splitlines()
    assert [json.loads(line) for line in lines] == rows
    # Key order is preserved, not sorted.
    assert lines[1].startswith('{"b"')
    assert sink.rows_written == 2


# -- CampaignSink ordering ---------------------------------------------------


def test_campaign_sink_reorders_completion_order(tmp_path):
    sink = CampaignSink(CsvSink(tmp_path / "o.csv"))
    sink.add(2, [{"i": 2}])
    sink.add(0, [{"i": 0}])
    assert sink.pending_units == 1  # Unit 2 waits for unit 1.
    assert sink.rows_written == 1
    sink.add(1, [{"i": 1}])
    assert sink.pending_units == 0
    assert sink.rows_written == 3
    sink.close()
    body = (tmp_path / "o.csv").read_text()
    assert body.splitlines()[1:] == ["0", "1", "2"]


def test_campaign_sink_rejects_duplicate_index(tmp_path):
    sink = CampaignSink(CsvSink(tmp_path / "d.csv"))
    sink.add(0, [{"i": 0}])
    with pytest.raises(SinkError, match="already written"):
        sink.add(0, [{"i": 0}])
    sink.add(2, [{"i": 2}])
    with pytest.raises(SinkError, match="already written"):
        sink.add(2, [{"i": 2}])


def test_campaign_sink_counts_buffered_rows(tmp_path):
    sink = CampaignSink(CsvSink(tmp_path / "b.csv"))
    sink.add(1, [{"i": 1}, {"i": 11}])
    assert sink.rows_seen == 2
    assert sink.rows_written == 0  # Gap at 0: nothing on disk yet.
    sink.close()


def test_resolve_artifact_prefers_plain_then_gz(tmp_path):
    plain = tmp_path / "x.csv"
    gz = tmp_path / "x.csv.gz"
    assert resolve_artifact(plain) is None
    with gzip.open(gz, "wt") as handle:
        handle.write("a\n1\n")
    assert resolve_artifact(plain) == gz
    plain.write_text("a\n2\n")
    assert resolve_artifact(plain) == plain


# -- crash windows -----------------------------------------------------------


def test_partial_csv_contains_exactly_journaled_units(tmp_path):
    spec = _spec()
    engine = Engine(cache=ResultCache(tmp_path / "cache"))
    summary = run_campaign(
        spec, tmp_path / "out", engine=engine, stop_after=2
    )
    assert summary.interrupted
    assert summary.rows == 2  # Running counter, no outcome list.
    with open(
        tmp_path / "out" / "results.csv", newline="", encoding="utf-8"
    ) as handle:
        rows = list(csv.reader(handle))
    journal = Journal.in_dir(tmp_path / "out")
    records = list(journal.iter_records())
    assert len(rows) == 1 + sum(len(r.rows) for r in records)


def test_kill_between_journal_fsync_and_csv_flush(tmp_path):
    """The nastiest window: unit journaled, CSV flush never landed.

    Simulated by truncating the partial CSV's last line after a clean
    stop — the journal then holds one more unit than the CSV, exactly
    what a SIGKILL between ``Journal.append`` and ``CsvSink.flush``
    leaves behind.  Resume must rebuild the CSV from the journal and
    converge to the uninterrupted bytes.
    """
    spec = _spec()
    ref_engine = Engine(cache=ResultCache(tmp_path / "cache-ref"))
    run_campaign(spec, tmp_path / "ref", engine=ref_engine)

    cache = tmp_path / "cache"
    run_campaign(
        spec,
        tmp_path / "out",
        engine=Engine(cache=ResultCache(cache)),
        stop_after=2,
    )
    csv_path = tmp_path / "out" / "results.csv"
    torn = csv_path.read_bytes()
    # Drop the final CSV row (and half of the one before it) while the
    # journal keeps both units.
    lines = torn.splitlines(keepends=True)
    half = lines[-1][: len(lines[-1]) // 2]
    csv_path.write_bytes(b"".join(lines[:-1]) + half)

    resumed = run_campaign(
        spec,
        tmp_path / "out",
        engine=Engine(cache=ResultCache(cache)),
        resume=True,
    )
    assert not resumed.interrupted
    assert resumed.from_journal == 2
    assert filecmp.cmp(
        tmp_path / "ref" / "results.csv", csv_path, shallow=False
    )


def test_resume_with_corrupt_partial_csv(tmp_path):
    """Even a garbage partial CSV is discarded; the journal wins."""
    spec = _spec()
    ref_engine = Engine(cache=ResultCache(tmp_path / "cache-ref"))
    run_campaign(spec, tmp_path / "ref", engine=ref_engine)

    cache = tmp_path / "cache"
    run_campaign(
        spec,
        tmp_path / "out",
        engine=Engine(cache=ResultCache(cache)),
        stop_after=1,
    )
    (tmp_path / "out" / "results.csv").write_text("not,a,real\ncsv\n")
    resumed = run_campaign(
        spec,
        tmp_path / "out",
        engine=Engine(cache=ResultCache(cache)),
        resume=True,
    )
    assert not resumed.interrupted
    assert filecmp.cmp(
        tmp_path / "ref" / "results.csv",
        tmp_path / "out" / "results.csv",
        shallow=False,
    )


def test_jsonl_mirror_written_and_rebuilt_on_resume(tmp_path):
    data = json.loads(json.dumps(BASE))
    data["output"] = {"jsonl": "results.jsonl"}
    spec = parse_spec(data)

    ref_engine = Engine(cache=ResultCache(tmp_path / "cache-ref"))
    run_campaign(spec, tmp_path / "ref", engine=ref_engine)
    ref_jsonl = tmp_path / "ref" / "results.jsonl"
    assert len(ref_jsonl.read_text().splitlines()) == 3

    cache = tmp_path / "cache"
    run_campaign(
        spec,
        tmp_path / "out",
        engine=Engine(cache=ResultCache(cache)),
        stop_after=2,
    )
    resumed = run_campaign(
        spec,
        tmp_path / "out",
        engine=Engine(cache=ResultCache(cache)),
        resume=True,
    )
    assert not resumed.interrupted
    assert filecmp.cmp(
        ref_jsonl, tmp_path / "out" / "results.jsonl", shallow=False
    )


# -- gzip-transparent artifact reads -----------------------------------------


def _gzip_artifact(path):
    with open(path, "rb") as src, gzip.open(str(path) + ".gz", "wb") as dst:
        dst.write(src.read())
    path.unlink()


def test_gzipped_artifacts_still_scored_and_statused(tmp_path):
    """Archived campaigns (.csv.gz/.jsonl.gz) keep working end-to-end."""
    from repro.campaign import campaign_progress, model_error_report

    data = json.loads(json.dumps(BASE))
    data["defaults"]["duration"] = 4.0
    data["axes"] = [
        {"name": "aqm", "values": ["droptail", "red"]},
        {"name": "backend", "values": ["fluid", "fluid-vec"]},
    ]
    data["metrics"] = {
        "columns": ["aggregate_mbps:cubic", "aggregate_mbps:bbr"]
    }
    spec = parse_spec(data)
    out = tmp_path / "out"
    engine = Engine(cache=ResultCache(tmp_path / "cache"))
    run_campaign(spec, out, engine=engine)

    _gzip_artifact(out / "results.csv")
    _gzip_artifact(out / "journal.jsonl")

    report = model_error_report(out, reference="fluid", share_cc="bbr")
    assert all(row.error == 0.0 for row in report.rows)

    status = campaign_progress(out)
    assert status["state"] == "complete"
    assert status["units"]["done"] == status["units"]["total"] == 4


# -- bounded memory ----------------------------------------------------------


def _fat_rows_engine(monkeypatch, blob_kb=16):
    """Make every engine point yield one ~``blob_kb`` KiB result row.

    The campaign layer only sees rows via ``_sweep_rows``; patching it
    keeps the real streaming plumbing (journal, sink, tracker) in the
    loop while making retention instantly visible in the heap.  Each
    row gets its own blob *object* — a shared constant would make
    retained rows nearly free and hide the leak.
    """
    from repro.campaign import run as run_mod

    def fat_rows(spec, unit, result):
        combo = dict(unit.combo)
        blob = f"{unit.index:08d}" + "x" * (blob_kb * 1024)
        return ({"buffer_bdp": combo.get("buffer_bdp"), "blob": blob},)

    monkeypatch.setattr(run_mod, "_sweep_rows", fat_rows)


def _peak_during_campaign(tmp_path, monkeypatch, n_units, tag):
    data = json.loads(json.dumps(BASE))
    data["axes"] = [
        {"name": "buffer_bdp", "values": list(range(1, n_units + 1))}
    ]
    spec = parse_spec(data)
    _fat_rows_engine(monkeypatch)
    engine = Engine(cache=ResultCache(tmp_path / f"cache-{tag}"))
    tracemalloc.start()
    tracemalloc.reset_peak()
    run_campaign(spec, tmp_path / f"out-{tag}", engine=engine)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_memory_plateau_rows_not_retained(tmp_path, monkeypatch):
    """Peak heap is flat as the campaign grows ~10x.

    With the seed collect-everything pipeline the large run's peak grew
    by ``(rows kept) * (blob size)`` — hundreds of KiB here; streamed,
    the delta stays within a small constant envelope.
    """
    small = _peak_during_campaign(tmp_path, monkeypatch, 8, "small")
    large = _peak_during_campaign(tmp_path, monkeypatch, 80, "large")
    # 72 extra 16-KiB rows ≈ 1.15 MiB if retained.  Unit/point metadata
    # (spec expansion, fingerprints) legitimately grows ~180 KiB; the
    # threshold sits well above that and far below row retention.
    assert large - small < 500 * 1024, (
        f"peak grew {large - small} bytes between 8 and 80 units — "
        "rows are being retained"
    )


def test_iter_units_consumers_do_not_accumulate(tmp_path):
    """iter_units yields outcomes one at a time, return flags interrupt."""
    spec = _spec()
    engine = Engine(cache=ResultCache(tmp_path / "cache"))
    stream = iter_units(spec, expand_units(spec), engine=engine)
    seen = []
    while True:
        try:
            outcome = next(stream)
        except StopIteration as stop:
            assert stop.value is False
            break
        seen.append(outcome.index)
    assert sorted(seen) == [0, 1, 2]

    stream = iter_units(
        spec, expand_units(spec), engine=engine, stop_after=2
    )
    count = 0
    while True:
        try:
            next(stream)
        except StopIteration as stop:
            assert stop.value is True
            break
        count += 1
    assert count == 2
