"""Workload generators and finite-flow support in both simulators."""

import random

import pytest

from repro.fluidsim import FluidSimulation, FluidSpec, run_fluid
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig
from repro.workloads import (
    WorkloadFlow,
    expected_offered_load,
    long_lived,
    on_off_flows,
    poisson_short_flows,
    to_fluid_specs,
)


class TestGenerators:
    def test_long_lived(self):
        flows = long_lived("cubic", 5, rtt=0.04)
        assert len(flows) == 5
        assert all(f.cc == "cubic" and f.rtt == 0.04 for f in flows)
        assert long_lived("bbr", 0) == []

    def test_poisson_arrival_count_near_rate(self):
        rng = random.Random(1)
        flows = poisson_short_flows(
            "cubic", arrival_rate=5.0, duration=100.0,
            mean_size=50_000, rng=rng,
        )
        assert len(flows) == pytest.approx(500, rel=0.25)
        assert all(0 <= f.start_time < 100.0 for f in flows)

    def test_poisson_sizes_heavy_tailed_with_right_mean(self):
        rng = random.Random(7)
        flows = poisson_short_flows(
            "cubic", arrival_rate=20.0, duration=200.0,
            mean_size=50_000, rng=rng,
        )
        sizes = [f.size_bytes for f in flows]
        mean = sum(sizes) / len(sizes)
        assert mean == pytest.approx(50_000, rel=0.4)
        assert max(sizes) > 5 * mean  # Heavy tail.

    def test_poisson_deterministic_per_seed(self):
        a = poisson_short_flows(
            "bbr", 2.0, 50.0, 10_000, random.Random(3)
        )
        b = poisson_short_flows(
            "bbr", 2.0, 50.0, 10_000, random.Random(3)
        )
        assert a == b

    def test_on_off_bursts_cover_duration(self):
        rng = random.Random(2)
        flows = on_off_flows(
            "bbr", count=2, on_seconds=4, off_seconds=6,
            duration=60, rng=rng,
        )
        # Each flow: one burst per 10 s period → ~6 bursts each.
        assert len(flows) == pytest.approx(12, abs=3)
        for f in flows:
            assert f.stop_time is not None
            assert 0 < f.stop_time - f.start_time <= 4.0 + 1e-9

    def test_offered_load(self):
        flows = [
            WorkloadFlow("cubic", 0.0, size_bytes=1e6),
            WorkloadFlow("cubic", 1.0, size_bytes=2e6),
            WorkloadFlow("bbr", 0.0),  # Elastic: excluded.
        ]
        assert expected_offered_load(flows, 10.0) == pytest.approx(3e5)

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            poisson_short_flows("c", 0.0, 10, 1000, rng)
        with pytest.raises(ValueError):
            poisson_short_flows("c", 1.0, 10, 0, rng)
        with pytest.raises(ValueError):
            poisson_short_flows("c", 1.0, 10, 1000, rng, size_shape=1.0)
        with pytest.raises(ValueError):
            on_off_flows("c", 1, 0, 1, 10, rng)
        with pytest.raises(ValueError):
            long_lived("c", -1)
        with pytest.raises(ValueError):
            expected_offered_load([], 0.0)


class TestFluidFiniteFlows:
    def test_stop_time_halts_flow(self):
        link = LinkConfig.from_mbps_ms(50, 40, 3)
        specs = [
            FluidSpec("cubic"),
            FluidSpec("cubic", stop_time=10.0),
        ]
        result = run_fluid(link, specs, duration=40)
        persistent, stopped = result.flows
        assert stopped.delivered_bytes < persistent.delivered_bytes
        # After the stop the survivor takes the whole link.
        sim = FluidSimulation(link, specs)
        sim.run(40)
        assert not sim._is_active(1, 20.0)

    def test_size_bytes_completes_flow(self):
        link = LinkConfig.from_mbps_ms(50, 40, 3)
        specs = [
            FluidSpec("cubic"),
            FluidSpec("cubic", size_bytes=2e6),
        ]
        sim = FluidSimulation(link, specs)
        result = sim.run(60)
        assert sim._finished[1]
        assert result.flows[1].delivered_bytes == pytest.approx(
            2e6, rel=0.05
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FluidSpec("cubic", start_time=5.0, stop_time=5.0)
        with pytest.raises(ValueError):
            FluidSpec("cubic", size_bytes=0)

    def test_churn_does_not_break_utilization(self):
        rng = random.Random(4)
        link = LinkConfig.from_mbps_ms(50, 40, 3)
        specs = to_fluid_specs(
            long_lived("cubic", 2)
            + long_lived("bbr", 2)
            + poisson_short_flows(
                "cubic", 1.0, 40.0, 200_000, rng
            )
        )
        result = run_fluid(link, specs, duration=40, warmup=10)
        total = result.aggregate_throughput()
        assert total == pytest.approx(link.capacity, rel=0.15)


class TestPacketFiniteFlows:
    def test_max_bytes_stops_sender(self):
        link = LinkConfig.from_mbps_ms(10, 20, 3)
        result = run_dumbbell(
            link,
            [FlowSpec("cubic"), FlowSpec("cubic", max_bytes=500_000)],
            duration=20,
        )
        bulk, finite = result.flows
        assert finite.delivered_bytes <= 500_000 * 1.01
        assert bulk.delivered_bytes > finite.delivered_bytes

    def test_short_flow_completes_quickly_then_releases_link(self):
        link = LinkConfig.from_mbps_ms(10, 20, 3)
        result = run_dumbbell(
            link,
            [FlowSpec("cubic"), FlowSpec("bbr", max_bytes=150_000)],
            duration=20,
        )
        bulk = result.flows[0]
        # The bulk flow ends up with nearly the whole link on average.
        assert bulk.throughput_mbps > 8.0

    def test_max_bytes_validation(self):
        from repro.cc import make_controller
        from repro.sim.endpoints import Sender
        from repro.sim.engine import EventLoop
        from repro.sim.stats import FlowStats

        with pytest.raises(ValueError):
            Sender(
                EventLoop(),
                0,
                make_controller("cubic"),
                lambda p: None,
                FlowStats(0),
                max_bytes=0,
            )
