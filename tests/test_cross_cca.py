"""Cross-CCA comparative invariants on shared scenarios.

These pin the *relative* behaviours the paper's arguments lean on:
aggression orderings between algorithms under identical conditions.
"""

import pytest

from repro.fluidsim import FluidSpec, run_fluid
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


@pytest.fixture(scope="module")
def fluid_vs_cubic():
    """Each challenger, 1-vs-1 against CUBIC on the same fluid link."""
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    shares = {}
    for cc in ("bbr", "bbr2", "copa", "vivace", "reno", "vegas"):
        result = run_fluid(
            link,
            [FluidSpec("cubic"), FluidSpec(cc)],
            duration=120,
            warmup=20,
            seed=8,
        )
        shares[cc] = result.flows[1].throughput / link.capacity
    return shares


def test_aggression_ordering_against_cubic(fluid_vs_cubic):
    """Fig. 7's ordering at the 1-challenger end: Vivace ≥ BBR > BBRv2,
    and the delay-based algorithms lose badly."""
    s = fluid_vs_cubic
    assert s["vivace"] > s["bbr2"]
    assert s["bbr"] > s["bbr2"]
    assert s["bbr2"] > s["copa"]
    assert s["copa"] < 0.25
    assert s["vegas"] < 0.25


def test_reno_weaker_than_cubic(fluid_vs_cubic):
    """The §5 history: Reno loses to CUBIC (hence the last transition)."""
    assert fluid_vs_cubic["reno"] < 0.5


def test_bbr_disproportionate_against_cubic(fluid_vs_cubic):
    """§4.2 condition (i) near the 1v1 point: BBR takes ≈ half the link
    from CUBIC at 3 BDP (the model predicts exactly 0.50 there)."""
    assert fluid_vs_cubic["bbr"] > 0.45


def test_packet_sim_agrees_on_bbr2_vs_bbr():
    """BBRv2 is less aggressive than BBRv1 against CUBIC on the packet
    simulator too (§4.6's premise)."""
    link = LinkConfig.from_mbps_ms(10, 20, 4)
    shares = {}
    for cc in ("bbr", "bbr2"):
        result = run_dumbbell(
            link,
            [FlowSpec("cubic"), FlowSpec(cc)],
            duration=60,
            warmup=10,
        )
        shares[cc] = result.flows[1].throughput
    assert shares["bbr2"] < shares["bbr"]


def test_homogeneous_populations_are_fair():
    """Within a single-CCA population every flow gets ~its fair share
    (RTTs equal) — fairness sanity for each fluid dynamic.  BBR flows
    start simultaneously, as in the paper's experiments: staggered BBR
    starts let the incumbent's bandwidth estimate lock in an advantage
    (a real BBR late-comer effect the fluid model also exhibits)."""
    link = LinkConfig.from_mbps_ms(100, 40, 4)
    for cc, jitter in (("cubic", 1.0), ("reno", 1.0), ("bbr", 0.0)):
        result = run_fluid(
            link,
            [FluidSpec(cc)] * 4,
            duration=120,
            warmup=30,
            seed=3,
            start_jitter=jitter,
        )
        rates = [f.throughput for f in result.flows]
        assert max(rates) / min(rates) < 2.0, cc
