"""Public API surface: the names the README and docs promise."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in (
        "LinkConfig",
        "predict_two_flow",
        "predict_multi_flow",
        "predict_nash",
        "ware_prediction",
        "ThroughputTable",
        "__version__",
    ):
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module,names",
    [
        (
            "repro.core",
            [
                "bisect_nash",
                "GroupGame",
                "nash_region",
                "ne_existence_conditions",
            ],
        ),
        (
            "repro.cc",
            ["make_controller", "BBRv1", "BBRv2", "Cubic", "Vegas"],
        ),
        (
            "repro.sim",
            [
                "run_dumbbell",
                "DumbbellNetwork",
                "FlowSpec",
                "RED",
                "CoDel",
                "CwndTracer",
                "EventLoop",
            ],
        ),
        (
            "repro.fluidsim",
            ["run_fluid", "FluidSpec", "FluidSimulation", "LOSS_MODES"],
        ),
        (
            "repro.experiments",
            ["FIGURES", "run_mix", "FigureResult"],
        ),
        (
            "repro.exec",
            [
                "Engine",
                "ResultCache",
                "ScenarioPoint",
                "default_cache_root",
                "fingerprint_payload",
                "resolve",
                "use",
            ],
        ),
        (
            "repro.analysis",
            ["jains_index", "synchronization_index", "classify_regime"],
        ),
        (
            "repro.workloads",
            ["poisson_short_flows", "on_off_flows", "long_lived"],
        ),
    ],
)
def test_subpackage_exports(module, names):
    mod = importlib.import_module(module)
    for name in names:
        assert hasattr(mod, name), f"{module}.{name}"
        assert name in mod.__all__, f"{name} missing from {module}.__all__"


def test_every_figure_id_is_callable():
    from repro.experiments import FIGURES

    for key, fn in FIGURES.items():
        assert callable(fn), key


def test_console_script_entry_point():
    from repro.cli import main

    assert callable(main)
