"""Unit-conversion helpers."""

import pytest

from repro.util import units


def test_mbps_to_bps():
    assert units.mbps_to_bps(1) == 1e6
    assert units.mbps_to_bps(100) == 1e8


def test_mbps_to_bytes_per_sec():
    assert units.mbps_to_bytes_per_sec(8) == 1e6
    assert units.mbps_to_bytes_per_sec(100) == pytest.approx(12.5e6)


def test_bytes_per_sec_to_mbps_roundtrip():
    rate = units.mbps_to_bytes_per_sec(37.5)
    assert units.bytes_per_sec_to_mbps(rate) == pytest.approx(37.5)


def test_bits_bytes_roundtrip():
    assert units.bits_to_bytes(units.bytes_to_bits(123.0)) == 123.0


def test_bytes_to_mbit():
    assert units.bytes_to_mbit(125_000) == pytest.approx(1.0)


def test_packet_conversions_default_mss():
    assert units.packets_to_bytes(10) == 15_000
    assert units.bytes_to_packets(15_000) == 10


def test_packet_conversions_custom_mss():
    assert units.packets_to_bytes(4, mss=100) == 400
    assert units.bytes_to_packets(450, mss=100) == 4.5


def test_time_conversions():
    assert units.ms_to_s(40) == 0.04
    assert units.s_to_ms(0.04) == pytest.approx(40)
    assert units.s_to_ms(units.ms_to_s(123.4)) == pytest.approx(123.4)


def test_mss_constant_is_ethernet_sized():
    assert units.MSS_BYTES == 1500
