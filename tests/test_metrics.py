"""Fairness and accuracy metrics."""

import pytest

from repro.analysis.metrics import (
    fair_share_deviation,
    fraction_within,
    jains_index,
    mean_absolute_error,
    mean_confidence_interval,
    mean_relative_error,
)


class TestJainsIndex:
    def test_perfect_fairness(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_winner(self):
        assert jains_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_intermediate(self):
        index = jains_index([2.0, 1.0])
        assert 0.5 < index < 1.0

    def test_empty_and_zero(self):
        assert jains_index([]) == 1.0
        assert jains_index([0.0, 0.0]) == 1.0

    def test_negative_clamped(self):
        assert jains_index([-1.0, 5.0]) == pytest.approx(
            jains_index([0.0, 5.0])
        )


class TestFairShareDeviation:
    def test_at_fair_share(self):
        assert fair_share_deviation(10.0, 100.0, 10) == pytest.approx(0.0)

    def test_above(self):
        assert fair_share_deviation(15.0, 100.0, 10) == pytest.approx(0.5)

    def test_below(self):
        assert fair_share_deviation(5.0, 100.0, 10) == pytest.approx(-0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            fair_share_deviation(1.0, 0.0, 10)
        with pytest.raises(ValueError):
            fair_share_deviation(1.0, 10.0, 0)


class TestErrorMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 2]) == pytest.approx(
            2 / 3
        )

    def test_mre(self):
        assert mean_relative_error([11, 22], [10, 20]) == pytest.approx(
            0.1
        )

    def test_mre_skips_zero_actual(self):
        assert mean_relative_error([1, 11], [0, 10]) == pytest.approx(
            0.05
        )

    def test_fraction_within(self):
        predicted = [10.4, 10.6, 20.0]
        actual = [10.0, 10.0, 10.0]
        assert fraction_within(predicted, actual, 0.05) == pytest.approx(
            1 / 3
        )
        assert fraction_within(predicted, actual, 0.06) == pytest.approx(
            2 / 3
        )

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1], [1, 2])
        with pytest.raises(ValueError):
            mean_relative_error([], [])


class TestConfidenceInterval:
    def test_single_sample_collapses(self):
        mean, lo, hi = mean_confidence_interval([4.0])
        assert mean == lo == hi == 4.0

    def test_interval_brackets_mean(self):
        mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0])
        assert lo < mean < hi
        assert mean == pytest.approx(2.0)

    def test_tighter_with_more_samples(self):
        _, lo1, hi1 = mean_confidence_interval([1.0, 3.0])
        _, lo2, hi2 = mean_confidence_interval([1.0, 3.0] * 20)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
