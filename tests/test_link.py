"""Drop-tail bottleneck link: serialization, queuing, drops, delay."""

import pytest

from repro.sim.engine import EventLoop
from repro.sim.link import DelayLine, Link
from repro.sim.packet import Packet


def make_packet(seq=0, size=1000, flow_id=0):
    return Packet(
        flow_id=flow_id,
        seq=seq,
        size=size,
        sent_time=0.0,
        delivered_at_send=0,
        delivered_time_at_send=0.0,
        app_limited=False,
        is_retransmit=False,
    )


def make_link(
    loop, delivered, capacity=1e6, delay=0.0, buffer_bytes=5000, on_drop=None
):
    return Link(
        loop=loop,
        capacity=capacity,
        delay=delay,
        buffer_bytes=buffer_bytes,
        deliver=delivered.append,
        on_drop=on_drop,
    )


def test_single_packet_serialization_time():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, capacity=1e6, delay=0.0)
    link.enqueue(make_packet(size=1000))
    loop.run_until(0.0009)
    assert delivered == []
    loop.run_until(0.0011)
    assert len(delivered) == 1


def test_propagation_delay_added_after_serialization():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, capacity=1e6, delay=0.05)
    link.enqueue(make_packet(size=1000))
    loop.run_until(0.0509)
    assert delivered == []
    loop.run_until(0.0511)
    assert len(delivered) == 1


def test_fifo_order_preserved():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered)
    for seq in range(5):
        link.enqueue(make_packet(seq=seq))
    loop.run_until(1.0)
    assert [p.seq for p in delivered] == [0, 1, 2, 3, 4]


def test_back_to_back_packets_serialize_sequentially():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, capacity=1e6)
    times = []
    link.deliver = lambda p: times.append(loop.now)
    for seq in range(3):
        link.enqueue(make_packet(seq=seq, size=1000))
    loop.run_until(1.0)
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_drop_when_buffer_full():
    loop = EventLoop()
    delivered = []
    dropped = []
    # Buffer of 2500B: the first packet goes into service (not buffered),
    # two more fit the queue, the fourth is dropped.
    link = make_link(
        loop, delivered, buffer_bytes=2500, on_drop=dropped.append
    )
    results = [link.enqueue(make_packet(seq=s, size=1000)) for s in range(4)]
    assert results == [True, True, True, False]
    assert [p.seq for p in dropped] == [3]
    loop.run_until(1.0)
    assert len(delivered) == 3
    assert link.stats.dropped_packets == 1
    assert link.stats.forwarded_packets == 3


def test_queue_drains_and_accepts_again():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, buffer_bytes=1000)
    assert link.enqueue(make_packet(seq=0))
    assert link.enqueue(make_packet(seq=1))
    assert not link.enqueue(make_packet(seq=2))  # Full.
    loop.run_until(1.0)
    assert link.enqueue(make_packet(seq=3))  # Space again.
    loop.run_until(2.0)
    assert [p.seq for p in delivered] == [0, 1, 3]


def test_queuing_delay_reflects_backlog():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, capacity=1e6, buffer_bytes=10_000)
    link.enqueue(make_packet(size=1000))  # In service.
    assert link.queuing_delay() == 0.0
    link.enqueue(make_packet(size=1000))
    assert link.queuing_delay() == pytest.approx(0.001)
    assert link.queued_packets == 1
    assert link.queued_bytes == 1000


def test_link_rate_enforced_over_many_packets():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, capacity=1e6, buffer_bytes=1e9)
    n = 100
    for seq in range(n):
        link.enqueue(make_packet(seq=seq, size=1000))
    loop.run_until(1000.0)
    # 100 packets × 1000 B at 1 MB/s = 0.1 s of serialization.
    assert loop.peek_time() is None
    assert len(delivered) == n
    assert link.stats.forwarded_bytes == n * 1000


def test_drop_rate_statistic():
    loop = EventLoop()
    delivered = []
    link = make_link(loop, delivered, buffer_bytes=1000)
    link.enqueue(make_packet(seq=0))
    link.enqueue(make_packet(seq=1))
    link.enqueue(make_packet(seq=2))  # Dropped.
    loop.run_until(1.0)  # Forwarded counters update at service end.
    assert link.stats.drop_rate == pytest.approx(1 / 3)


def test_mean_occupancy_zero_when_unused():
    loop = EventLoop()
    link = make_link(loop, [])
    assert link.stats.mean_occupancy(10.0) == 0.0


def test_invalid_parameters():
    loop = EventLoop()
    with pytest.raises(ValueError):
        Link(loop, capacity=0, delay=0, buffer_bytes=1, deliver=print)
    with pytest.raises(ValueError):
        Link(loop, capacity=1, delay=-1, buffer_bytes=1, deliver=print)
    with pytest.raises(ValueError):
        Link(loop, capacity=1, delay=0, buffer_bytes=0, deliver=print)


def test_delay_line_delivers_after_delay():
    loop = EventLoop()
    got = []
    line = DelayLine(loop, 0.02, got.append)
    line.send("x")
    loop.run_until(0.019)
    assert got == []
    loop.run_until(0.021)
    assert got == ["x"]


def test_delay_line_preserves_order():
    loop = EventLoop()
    got = []
    line = DelayLine(loop, 0.01, got.append)
    for i in range(5):
        line.send(i)
    loop.run_until(1.0)
    assert got == [0, 1, 2, 3, 4]


def test_delay_line_rejects_negative_delay():
    with pytest.raises(ValueError):
        DelayLine(EventLoop(), -0.1, print)
