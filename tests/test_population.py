"""repro.population: state, dynamics, tiered oracle, runs, campaigns."""

import filecmp
import json

import numpy as np
import pytest

from repro.campaign import (
    SpecError,
    expand_units,
    parse_spec,
    run_campaign,
)
from repro.check import Checker, InvariantViolation
from repro.cli import build_parser, main
from repro.core.multi_flow import predict_multi_flow
from repro.core.nash import predict_nash
from repro.exec import Engine, ResultCache
from repro.population import (
    CellSpec,
    DynamicsConfig,
    ErrorMap,
    PopulationState,
    TieredOracle,
    quantize_counts,
    run_population,
    step_shares,
)
from repro.util.config import LinkConfig

PAPER_LINK = LinkConfig.from_mbps_ms(100, 40, 5)
SHALLOW_LINK = LinkConfig.from_mbps_ms(100, 40, 0.5)
TINY_LINK = LinkConfig.from_mbps_ms(20, 20, 1)


def _cell(link=PAPER_LINK, n=10, label="c"):
    return CellSpec(link=link, n_flows=n, label=label)


# -- state & quantization ----------------------------------------------------


def test_quantize_counts_sums_and_tie_break():
    # Ties hand the leftover flow to the lowest index (stable argsort).
    assert quantize_counts(np.array([0.5, 0.5]), 5).tolist() == [3, 2]
    thirds = np.array([1 / 3, 1 / 3, 1 / 3])
    assert quantize_counts(thirds, 10).tolist() == [4, 3, 3]
    rng = np.random.default_rng(0)
    for total in (1, 7, 100, 10**6):
        shares = rng.dirichlet(np.ones(4))
        counts = quantize_counts(shares, total)
        assert counts.sum() == total
        assert (counts >= 0).all()
        # Deterministic: same vector always maps to the same counts.
        assert (quantize_counts(shares, total) == counts).all()


def test_state_counts_and_weighted_share():
    cells = [_cell(n=10, label="a"), _cell(n=30, label="b")]
    state = PopulationState(
        cells, np.array([[1.0, 0.0], [0.0, 1.0]])
    )
    assert state.counts().tolist() == [[10, 0], [0, 30]]
    assert state.share_of("bbr") == pytest.approx(0.75)
    assert state.share_of("cubic") == pytest.approx(0.25)


def test_state_from_share_endpoints():
    state = PopulationState.from_share([_cell(n=8)], 0.0)
    assert state.shares.tolist() == [[1.0, 0.0]]
    state = PopulationState.from_share([_cell(n=8)], 1.0)
    assert state.shares.tolist() == [[0.0, 1.0]]
    with pytest.raises(ValueError, match="challenger_share"):
        PopulationState.from_share([_cell()], 1.5)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda: PopulationState([], np.zeros((0, 2))), "at least one"),
        (
            lambda: PopulationState([_cell()], np.array([[1.0]])),
            "shape",
        ),
        (
            lambda: PopulationState(
                [_cell()], np.array([[0.7, 0.7]])
            ),
            "sum to 1",
        ),
        (
            lambda: PopulationState(
                [_cell()], np.array([[1.2, -0.2]])
            ),
            "non-negative",
        ),
        (
            lambda: PopulationState(
                [_cell()], np.array([[np.nan, 1.0]])
            ),
            "finite",
        ),
        (
            lambda: PopulationState(
                [_cell()],
                np.array([[0.5, 0.5]]),
                strategies=("bbr", "bbr"),
            ),
            "duplicate",
        ),
        (lambda: CellSpec(link=PAPER_LINK, n_flows=0), "n_flows"),
    ],
)
def test_state_rejects_with_actionable_message(mutate, message):
    with pytest.raises(ValueError, match=message):
        mutate()


# -- dynamics ----------------------------------------------------------------


def test_replicator_moves_toward_higher_payoff():
    shares = np.array([[0.5, 0.5]])
    payoffs = np.array([[1.0, 3.0]])
    nxt = step_shares(
        DynamicsConfig(name="replicator", step=0.5),
        shares,
        payoffs,
        np.array([1.0]),
    )
    # mean = 2: growth 0.75 / 1.25 -> exactly (0.375, 0.625).
    assert nxt[0].tolist() == pytest.approx([0.375, 0.625])


def test_replicator_zero_mean_payoff_leaves_shares_unchanged():
    shares = np.array([[0.3, 0.7]])
    nxt = step_shares(
        DynamicsConfig(name="replicator"),
        shares,
        np.zeros((1, 2)),
        np.array([1.0]),
    )
    assert nxt[0].tolist() == pytest.approx(shares[0].tolist())


def test_best_response_inertia_and_tie_break():
    config = DynamicsConfig(name="best-response", inertia=0.5)
    nxt = step_shares(
        config,
        np.array([[0.8, 0.2]]),
        np.array([[0.0, 1.0]]),
        np.array([1.0]),
    )
    assert nxt[0].tolist() == pytest.approx([0.4, 0.6])
    # Payoff ties break toward the lowest strategy index.
    tied = step_shares(
        config,
        np.array([[0.0, 1.0]]),
        np.array([[1.0, 1.0]]),
        np.array([1.0]),
    )
    assert tied[0].tolist() == pytest.approx([0.5, 0.5])


def test_logit_softmax_and_seeded_sampling():
    config = DynamicsConfig(name="logit", epsilon=0.5)
    # Equal payoffs: the reconsidering half splits evenly.
    nxt = step_shares(
        config,
        np.array([[1.0, 0.0]]),
        np.zeros((1, 2)),
        np.array([1.0]),
    )
    assert nxt[0].tolist() == pytest.approx([0.75, 0.25])
    # Sampled rule is reproducible per seed.
    payoffs = np.array([[1.0, 1.1]])
    runs = [
        step_shares(
            config,
            np.array([[0.5, 0.5]]),
            payoffs,
            np.array([1.0]),
            np.random.default_rng(7),
        )
        for _ in range(2)
    ]
    assert runs[0].tolist() == runs[1].tolist()


def test_mutation_keeps_strategies_alive():
    nxt = step_shares(
        DynamicsConfig(name="best-response", inertia=0.0, mutation=0.1),
        np.array([[1.0, 0.0]]),
        np.array([[1.0, 0.0]]),
        np.array([1.0]),
    )
    assert nxt[0].tolist() == pytest.approx([0.95, 0.05])


@pytest.mark.parametrize(
    "kwargs, message",
    [
        ({"name": "mystery"}, "dynamics must be one of"),
        ({"step": 0.0}, "step"),
        ({"inertia": 1.0}, "inertia"),
        ({"epsilon": 0.0}, "epsilon"),
        ({"temperature": 0.0}, "temperature"),
        ({"mutation": 1.0}, "mutation"),
    ],
)
def test_dynamics_config_rejects(kwargs, message):
    with pytest.raises(ValueError, match=message):
        DynamicsConfig(**kwargs)


# -- tiered oracle -----------------------------------------------------------


def test_tier0_matches_closed_form_model():
    oracle = TieredOracle(engine=Engine(), force_tier=0)
    state = PopulationState.from_share([_cell(n=10)], 0.5)
    payoffs = oracle.payoffs(state)
    prediction = predict_multi_flow(PAPER_LINK, 5, 5)
    assert payoffs[0, 0] == pytest.approx(
        prediction.per_flow_cubic_sync
    )
    assert payoffs[0, 1] == pytest.approx(prediction.per_flow_bbr_sync)


def test_tier0_empty_class_uses_single_deviant_payoff():
    # With zero BBR flows the BBR payoff is the Eq. 25 deviation
    # payoff: what one defector from the (n, 0) mix would earn.
    oracle = TieredOracle(engine=Engine(), force_tier=0)
    state = PopulationState.from_share([_cell(n=10)], 0.0)
    payoffs = oracle.payoffs(state)
    deviant = predict_multi_flow(PAPER_LINK, 9, 1)
    assert payoffs[0, 1] == pytest.approx(deviant.per_flow_bbr_sync)


def test_tier0_memoizes_repeat_mixes():
    oracle = TieredOracle(engine=Engine(), force_tier=0)
    state = PopulationState.from_share([_cell(n=10)], 0.5)
    first = oracle.payoffs(state)
    second = oracle.payoffs(state)
    assert (first == second).all()
    stats = oracle.stats
    assert stats["queries"] == 2
    assert stats["tier0"] == 2
    assert stats["tier1"] == 0
    assert stats["memo_hits"] == 1


def test_unmodeled_strategy_pair_forces_tier1():
    # The analytical model only covers CUBIC vs BBR; any other pair
    # must simulate, recorded as a forced escalation.
    oracle = TieredOracle(engine=Engine(), duration=2.0)
    cell = _cell(link=TINY_LINK, n=4)
    state = PopulationState.from_share(
        [cell], 0.5, strategies=("cubic", "bbr2")
    )
    payoffs = oracle.payoffs(state)
    assert np.isfinite(payoffs).all() and (payoffs > 0).all()
    entry = oracle.error_map.get(cell.region_key())
    assert entry["tier"] == 1 and entry["forced"]
    assert entry["rel_error"] is None
    assert oracle.stats["tier1"] == 1
    assert oracle.stats["tier0"] == 0


@pytest.mark.parametrize(
    "kwargs, message",
    [
        ({"bound": "upper"}, "bound"),
        ({"error_threshold": 0.0}, "error_threshold"),
        ({"force_tier": 2}, "force_tier"),
    ],
)
def test_oracle_rejects(kwargs, message):
    with pytest.raises(ValueError, match=message):
        TieredOracle(**kwargs)


def test_error_map_round_trip_and_merge(tmp_path):
    emap = ErrorMap()
    emap.record(
        "a", {"tier": 1, "rel_error": 0.4, "threshold": 0.1}
    )
    emap.record(
        "b", {"tier": 0, "rel_error": 0.02, "threshold": 0.1}
    )
    emap.record("c", {"tier": 1, "rel_error": None, "forced": True})
    assert emap.tier_for("a") == 1
    assert emap.tier_for("missing") is None
    assert emap.escalated() == ["a", "c"]
    assert emap.max_rel_error() == pytest.approx(0.4)

    path = tmp_path / "error_map.json"
    emap.save(str(path))
    loaded = ErrorMap.load(str(path))
    assert loaded.to_dict() == emap.to_dict()

    other = ErrorMap()
    other.record("a", {"tier": 0, "rel_error": 0.01})
    loaded.merge(other)  # Theirs win on collision.
    assert loaded.tier_for("a") == 0
    assert loaded.tier_for("b") == 0


# -- run-level acceptance ----------------------------------------------------


def test_replicator_converges_to_nash_within_two_points():
    # The headline acceptance: on a paper-scale cell the replicator
    # fixed point lands within 2pp of the Eq. 25 NE share.
    cell = _cell(n=100, label="paper")
    result = run_population(
        [cell],
        dynamics=DynamicsConfig(name="replicator", step=0.5),
        ticks=60,
        seed=0,
        init_share=0.1,
        oracle=TieredOracle(engine=Engine(), force_tier=0),
    )
    ne = predict_nash(PAPER_LINK, 100)
    predicted = ne.n_bbr_sync / 100
    assert abs(result.final_share("bbr") - predicted) <= 0.02
    assert result.ne[0]["share_sync"] == pytest.approx(predicted)
    stats = result.oracle
    assert stats["queries"] == 60
    assert stats["tier0"] == 60 and stats["tier1"] == 0


def test_trajectory_bit_identical_cold_warm_and_jobs(tmp_path):
    # force_tier=1 so every tick goes through the engine: the
    # trajectory must not depend on cache state or jobs fan-out.
    cell = _cell(link=TINY_LINK, n=8, label="t")

    def _run(engine):
        return run_population(
            [cell],
            dynamics=DynamicsConfig(name="logit", epsilon=0.5),
            ticks=3,
            seed=11,
            oracle=TieredOracle(
                engine=engine, force_tier=1, duration=3.0
            ),
        )

    cache = tmp_path / "cache"
    cold = _run(Engine(jobs=1, cache=ResultCache(cache)))
    warm_engine = Engine(jobs=1, cache=ResultCache(cache))
    warm = _run(warm_engine)
    fanned = _run(Engine(jobs=4, cache=ResultCache(cache)))

    reference = json.dumps(cold.to_dict(), sort_keys=True)
    assert json.dumps(warm.to_dict(), sort_keys=True) == reference
    assert json.dumps(fanned.to_dict(), sort_keys=True) == reference
    assert warm_engine.hits > 0  # The warm run really reused results.


def test_shallow_buffer_region_escalates_to_tier1():
    # Calibration at 40 flows x 6 s: the model predicts total CUBIC
    # starvation at 0.5 BDP but the fluid substrate still grants CUBIC
    # a trickle, so the recorded error crosses the 10% threshold.
    cell = CellSpec(link=SHALLOW_LINK, n_flows=40, label="shallow")
    oracle = TieredOracle(
        engine=Engine(), error_threshold=0.1, duration=6.0
    )
    result = run_population(
        [cell],
        dynamics=DynamicsConfig(name="replicator"),
        ticks=1,
        seed=0,
        oracle=oracle,
    )
    key = cell.region_key()
    assert key == "100mbps|40ms|0.5bdp|n40"
    assert result.error_map.escalated() == [key]
    entry = result.error_map.get(key)
    assert entry["tier"] == 1
    assert entry["rel_error"] > 0.1
    stats = result.oracle
    assert stats["tier1"] == 1 and stats["tier0"] == 0
    assert stats["calibrations"] == 1
    assert stats["sim_points"] >= 2  # Calibration + the tick's batch.


def test_run_population_rejects_bad_ticks():
    with pytest.raises(ValueError, match="ticks"):
        run_population([_cell()], ticks=0)


# -- invariant checks --------------------------------------------------------


def test_checker_accepts_valid_population_state():
    check = Checker()
    check.population_state(0, np.array([[0.5, 0.5], [1.0, 0.0]]))
    assert check.checks_run == 2


@pytest.mark.parametrize(
    "shares, message",
    [
        ([[np.nan, 1.0]], "finite"),
        ([[1.2, -0.2]], "negative"),
        ([[0.7, 0.7]], "not 1"),
    ],
)
def test_checker_rejects_invalid_population_state(shares, message):
    with pytest.raises(InvariantViolation, match=message):
        Checker().population_state(3, np.array(shares))


def test_checker_rejects_oracle_tier_mismatch():
    check = Checker()
    check.population_oracle(0, queries=4, tier0=3, tier1=1)
    with pytest.raises(InvariantViolation, match="exactly one tier"):
        check.population_oracle(1, queries=4, tier0=3, tier1=2)


def test_checked_run_passes_end_to_end():
    result = run_population(
        [_cell(n=10)],
        dynamics=DynamicsConfig(name="replicator"),
        ticks=12,
        seed=0,
        oracle=TieredOracle(engine=Engine(), force_tier=0),
        check=Checker(),
    )
    assert result.ticks == 12


# -- campaign stage ----------------------------------------------------------

POP_SPEC = {
    "name": "pop",
    "link": {
        "bandwidth_mbps": 100.0,
        "rtt_ms": 40.0,
        "buffer_bdp": 0.5,
    },
    "defaults": {"duration": 6.0, "backend": "fluid-vec", "seed": 0},
    "axes": [
        {
            "name": "dynamics",
            "values": ["replicator", "best-response", "logit"],
        }
    ],
    "stages": [
        {
            "name": "adopt",
            "type": "population",
            "flows": 20,
            "ticks": 3,
            "init_share": 0.1,
            "error_threshold": 0.1,
        }
    ],
}


def _pop_spec(**overrides):
    data = json.loads(json.dumps(POP_SPEC))  # Deep copy.
    data.update(overrides)
    return parse_spec(data)


def test_population_spec_parses_and_expands():
    spec = _pop_spec(
        axes=[
            {"name": "dynamics", "values": ["replicator", "logit"]},
            {"name": "epsilon", "values": [0.1, 0.3]},
        ]
    )
    stage = spec.stages[0]
    assert stage.kind == "population"
    assert stage.flows == 20 and stage.ticks == 3
    units = expand_units(spec)
    assert len(units) == 4
    assert {u.dynamics for u in units} == {"replicator", "logit"}
    assert {u.epsilon for u in units} == {0.1, 0.3}
    for unit in units:
        params = unit.params()
        assert params["dynamics"] == unit.dynamics
        assert params["epsilon"] == unit.epsilon


@pytest.mark.parametrize(
    "mutate, message",
    [
        (
            lambda d: d["axes"].append(
                {"name": "mix", "values": ["cubic:1,bbr:1"]}
            ),
            "derive the mix split",
        ),
        (
            lambda d: d["stages"][0].update(dynamics="mystery"),
            "dynamics must be one of",
        ),
        (
            lambda d: d["stages"][0].update(flows=1),
            "flows >= 2",
        ),
        (
            lambda d: d["stages"][0].update(epsilon=0.0),
            "epsilon",
        ),
        (
            lambda d: d["stages"][0].update(error_threshold=-1),
            "error_threshold",
        ),
    ],
)
def test_population_spec_rejects(mutate, message):
    data = json.loads(json.dumps(POP_SPEC))
    mutate(data)
    with pytest.raises(SpecError, match=message):
        parse_spec(data)


def test_population_axis_requires_population_stage():
    data = json.loads(json.dumps(POP_SPEC))
    data["defaults"]["mix"] = "cubic:1,bbr:1"
    data["stages"] = [{"name": "s", "type": "sweep"}]
    data["axes"] = [
        {"name": "buffer_bdp", "values": [1, 2]},
        {"name": "epsilon", "values": [0.1, 0.2]},
    ]
    with pytest.raises(SpecError, match="only applies to population"):
        parse_spec(data)


def test_population_campaign_resume_byte_identical(tmp_path):
    spec = _pop_spec()

    ref_engine = Engine(cache=ResultCache(tmp_path / "cache-a"))
    run_campaign(spec, tmp_path / "ref", engine=ref_engine)

    cache_b = tmp_path / "cache-b"
    first = Engine(cache=ResultCache(cache_b))
    summary = run_campaign(
        spec, tmp_path / "out", engine=first, stop_after=2
    )
    assert summary.interrupted
    assert summary.executed == 2
    assert summary.csv_path is None
    # The units that did finish already merged their calibration
    # regions into the artifact.
    assert (tmp_path / "out" / "error_map.json").exists()

    second = Engine(cache=ResultCache(cache_b))
    resumed = run_campaign(
        spec, tmp_path / "out", engine=second, resume=True
    )
    assert not resumed.interrupted
    assert resumed.from_journal == 2
    assert resumed.executed == 1

    for name in ("results.csv", "error_map.json"):
        assert filecmp.cmp(
            tmp_path / "ref" / name,
            tmp_path / "out" / name,
            shallow=False,
        ), name

    header, *rows = (
        (tmp_path / "ref" / "results.csv")
        .read_text()
        .strip()
        .splitlines()
    )
    assert "final_challenger_share" in header
    assert "oracle_tier0" in header and "max_rel_error" in header
    assert len(rows) == 3


# -- CLI ---------------------------------------------------------------------


def test_cli_population_run_and_plot(tmp_path, capsys):
    out = tmp_path / "adopt"
    code = main(
        [
            "population",
            "run",
            "--flows",
            "30",
            "--ticks",
            "12",
            "--tier",
            "0",
            "--no-cache",
            "--jobs",
            "1",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "overall bbr share" in printed
    assert "oracle:" in printed
    assert "escalated regions: (none)" in printed
    for name in ("summary.json", "trajectory.csv", "error_map.json"):
        assert (out / name).exists(), name
    summary = json.loads((out / "summary.json").read_text())
    assert summary["oracle"]["tier1"] == 0

    assert main(["population", "plot", str(out)]) == 0
    plotted = capsys.readouterr().out
    assert "bbr share" in plotted
    assert "final bbr share" in plotted


def test_cli_population_plot_missing_dir(tmp_path, capsys):
    code = main(["population", "plot", str(tmp_path / "nope")])
    assert code == 2
    assert "cannot load" in capsys.readouterr().err


def test_cli_population_rtt_classes_parse():
    parser = build_parser()
    args = parser.parse_args(
        ["population", "run", "--rtt-classes", "10,40,120"]
    )
    assert args.rtt_classes == [10.0, 40.0, 120.0]
    with pytest.raises(SystemExit):
        parser.parse_args(
            ["population", "run", "--rtt-classes", "fast,slow"]
        )
