"""Extension benchmark: the CUBIC/BBR game under RED AQM.

Beyond the paper: its related work cites Chien & Sinclair's finding that
NE efficiency between TCP variants differs between drop-tail and RED
buffers, and §5 asks for "networking solutions that work well with a
diverse mix".  Here we rerun the NE search on the packet simulator under
RED and CoDel: both punish loss-based CUBIC (RED with early random
drops, CoDel by draining the standing queue CUBIC depends on) while
loss-agnostic BBRv1 shrugs them off, so the equilibrium should shift
toward BBR (i.e. *fewer* CUBIC flows at the NE than under drop-tail).
"""

from repro.core.game import bisect_nash
from repro.sim.aqm import CoDelConfig, REDConfig
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig

N_FLOWS = 6
DURATION = 60.0


def _ne_search(discipline: str):
    link = LinkConfig.from_mbps_ms(10, 20, 6)
    red_config = (
        REDConfig.for_buffer(link.buffer_bytes)
        if discipline == "red"
        else None
    )
    codel_config = CoDelConfig() if discipline == "codel" else None

    def fn(k: int):
        flows = [FlowSpec("cubic") for _ in range(N_FLOWS - k)] + [
            FlowSpec("bbr") for _ in range(k)
        ]
        result = run_dumbbell(
            link,
            flows,
            duration=DURATION,
            warmup=DURATION / 6,
            red=red_config,
            codel=codel_config,
        )
        cubic = result.by_cc("cubic")
        bbr = result.by_cc("bbr")
        mean = lambda fl: (
            sum(f.throughput for f in fl) / len(fl) if fl else 0.0
        )
        return mean(cubic), mean(bbr)

    tolerance = 0.03 * link.capacity  # Packet-sim trial noise.
    equilibria, cache = bisect_nash(N_FLOWS, fn, tolerance=tolerance)
    return equilibria, cache


def _all_disciplines():
    return {
        "droptail": _ne_search("droptail"),
        "red": _ne_search("red"),
        "codel": _ne_search("codel"),
    }


def test_ne_under_aqm(benchmark):
    rows = benchmark.pedantic(_all_disciplines, rounds=1, iterations=1)
    ne_droptail, _ = rows["droptail"]
    ne_red, _ = rows["red"]
    ne_codel, _ = rows["codel"]

    # Equilibria exist under every queue discipline.
    assert ne_droptail and ne_red and ne_codel

    # Both AQMs favour the loss-agnostic side: their NE have at least as
    # many BBR flows (fewer CUBIC) as drop-tail's.  RED drops early on
    # queue size; CoDel drops the buffer-filling flow's standing queue —
    # either way, CUBIC pays and BBRv1 does not.
    assert max(ne_red) >= max(ne_droptail)
    assert max(ne_codel) >= max(ne_droptail)
