"""Population-dynamics hot path: oracle-served ticks per second.

The adoption loop's cost model is "tier 0 is nearly free": a tick asks
the tiered oracle for payoffs, and on the model tier the answer is an
in-process memo hit or one closed-form evaluation routed through
``Engine.cached_payload``.  This benchmark drives a paper-scale cell
(100 flows) under replicator dynamics with the oracle pinned to tier 0
and appends the achieved ticks/second — plus the engine-level tier-0
hit rate of a warm-cache rerun — to ``BENCH_population.json`` at the
repo root.  When the file already holds records from the same machine,
the run must stay within ``REGRESSION_SLACK`` of the recorded median;
a collapse means a simulation or an uncached model evaluation landed
on the per-tick path.
"""

import json
import pathlib
import platform
import tempfile
import time

from repro.exec import Engine, ResultCache
from repro.population import (
    CellSpec,
    DynamicsConfig,
    TieredOracle,
    run_population,
)
from repro.util.config import LinkConfig

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_population.json"
)

#: Tolerated slowdown vs the recorded median rate on this machine.
REGRESSION_SLACK = 0.05

#: Any machine should clear this many tier-0 ticks/s on one cell; an
#: order-of-magnitude collapse means per-tick work stopped being a
#: memo lookup.
ABSOLUTE_FLOOR_TICKS_PER_S = 20

TICKS = 60
FLOWS = 100


def _cell():
    return CellSpec(
        link=LinkConfig.from_mbps_ms(100, 40, 10),
        n_flows=FLOWS,
        label="bench",
    )


def _run(engine=None, seed=0):
    return run_population(
        [_cell()],
        dynamics=DynamicsConfig(name="replicator", step=0.5),
        ticks=TICKS,
        seed=seed,
        oracle=TieredOracle(engine=engine, force_tier=0),
    )


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure_ticks_per_s():
    """Best-of-5 CPU-time rate, in oracle-served ticks per second.

    ``process_time`` (not wall clock) so co-tenant load on a shared
    runner cannot masquerade as a regression; best-of so one-sided
    scheduler noise is discarded.
    """
    _run()  # Warm numpy and the model's import-time caches.
    best_elapsed = float("inf")
    for _ in range(5):
        start = time.process_time()
        _run()
        best_elapsed = min(best_elapsed, time.process_time() - start)
    return round(TICKS / best_elapsed, 1)


def _tier0_hit_rate():
    """Engine-level hit rate of a warm-cache rerun with a fresh memo.

    The second run's oracle has an empty in-process memo, so every
    distinct mix goes to ``Engine.cached_payload`` — and must come
    back from the content-addressed cache, not recomputation.
    """
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        _run(engine=Engine(jobs=1, cache=cache))
        warm = Engine(jobs=1, cache=cache)
        _run(engine=warm)
        stats = warm.stats
        return stats["cache_hits"] / max(stats["submitted"], 1)


def _append_record(entry):
    records = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else []
    )
    records.append(entry)
    BENCH_PATH.write_text(json.dumps(records, indent=2) + "\n")


def test_population_tick_rate_trajectory():
    """Record ticks/s + tier-0 hit rate and guard against regression.

    The measured rate is compared against the *median* of this
    machine's prior records, and a below-threshold reading is
    re-measured before it counts: a genuine structural slowdown fails
    every remeasure, while a noise spike clears on retry.
    """
    rate = _measure_ticks_per_s()
    hit_rate = _tier0_hit_rate()

    machine = platform.machine()
    prior = []
    if BENCH_PATH.exists():
        prior = [
            record
            for record in json.loads(BENCH_PATH.read_text())
            if record.get("machine") == machine
        ]
    _append_record(
        {
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "machine": machine,
            "ticks": TICKS,
            "flows": FLOWS,
            "ticks_per_s": rate,
            "tier0_hit_rate": round(hit_rate, 4),
        }
    )

    assert rate > ABSOLUTE_FLOOR_TICKS_PER_S, rate
    assert hit_rate >= 0.9, (
        f"warm rerun answered only {hit_rate:.0%} of tier-0 payloads "
        "from the result cache"
    )
    history = [
        record["ticks_per_s"]
        for record in prior
        if "ticks_per_s" in record
    ]
    if history:
        threshold = (1.0 - REGRESSION_SLACK) * _median(history)
        for _ in range(3):  # Re-measure: noise clears, regressions don't.
            if rate >= threshold:
                break
            rate = _measure_ticks_per_s()
        assert rate >= threshold, (
            f"{rate} ticks/s is more than {REGRESSION_SLACK:.0%} below "
            f"the recorded median {_median(history)}"
        )


def test_deterministic_across_engines():
    """The benchmark scenario itself honors the determinism contract."""
    cold = _run(seed=7)
    warm = _run(engine=Engine(jobs=4), seed=7)
    assert cold.final_shares == warm.final_shares
