"""Figure 6: the Nash-equilibrium geometry, quantified from the model.

Paper result: the per-flow BBR bandwidth line starts above the fair-share
line (point A), ends at it (point B, all-BBR), and its crossing C is a
stable mixed NE.
"""

import pytest

from repro.core.game import ThroughputTable
from repro.core.multi_flow import predict_multi_flow
from repro.experiments.figures import figure6
from repro.util.config import LinkConfig


def test_figure6(benchmark, scale, save_figure):
    fig = benchmark.pedantic(
        figure6, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_figure(fig)
    fair = fig.get("fair-share").y[0]
    for bound in ("bbr-per-flow-sync", "bbr-per-flow-desync"):
        series = fig.get(bound)
        # Point A: a lone BBR flow is far above fair share.
        assert series.y[0] > 2 * fair
        # Point B: all-BBR lands exactly at fair share.
        assert series.y[-1] == pytest.approx(fair)
        # Strictly decreasing until the all-BBR point.
        interior = series.y[:-1]
        assert all(a > b for a, b in zip(interior, interior[1:]))
        # The line crosses fair share → an interior crossing C exists.
        assert interior[0] > fair and interior[-1] < fair


def test_figure6_crossing_is_stable_ne(scale):
    """Build the model-implied game and check C is an NE (§4.1 case 2)."""
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    n = 10

    def payoff(k):
        pred = predict_multi_flow(link, n - k, k)
        return (pred.per_flow_cubic_sync, pred.per_flow_bbr_sync)

    table = ThroughputTable.from_function(n, payoff)
    equilibria = table.nash_equilibria(tolerance=1e-9)
    assert equilibria
    assert any(0 < k < n for k in equilibria)
    # Best-response dynamics from both extremes converge to an NE.
    for start in (0, n):
        path = table.best_response_path(start)
        assert table.is_nash(path[-1], tolerance=1e-9)
