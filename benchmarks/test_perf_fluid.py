"""Fluid-substrate hot path: flow-ticks/second, scalar vs vectorized.

The vectorized substrate (:mod:`repro.fluidsim.vec`) exists for one
reason — campaign throughput — so this benchmark measures exactly
that: how many flow-ticks per second each substrate advances on the
paper's canonical 50-flow contention scenarios, and the resulting
batched speedup.  Results are appended to ``BENCH_fluid.json`` at the
repo root, mirroring the ``BENCH_cc`` trajectory file.

Two guards ride on the numbers:

* The all-CUBIC scenario (the paper's incumbent population) must run
  at >= ``MIN_SPEEDUP``x the scalar simulator when batched.  Mixed
  CUBIC+BBR and all-BBR speedups are recorded for the trajectory but
  not gated — BBR's windowed max filter leaves less arithmetic to
  amortize, and their ratios sit near the threshold.
* The vectorized flow-tick rate must stay within ``REGRESSION_SLACK``
  of the median of this machine's prior records, re-measured before a
  failure counts (noise clears on retry, structural slowdowns don't).

Speedups are computed from back-to-back in-process timings: scalar
wall time on this container fluctuates by tens of percent between
runs, so a ratio against a stored baseline would be meaningless.
"""

import json
import pathlib
import platform
import time

from repro.fluidsim import BatchPoint, FluidSpec, run_fluid
from repro.fluidsim import run_fluid_vec_batch
from repro.util.config import LinkConfig

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_fluid.json"
)

#: Tolerated slowdown vs the median recorded vec rate on this machine.
REGRESSION_SLACK = 0.05

#: The headline claim, asserted on the all-CUBIC scenario.
MIN_SPEEDUP = 10.0

#: Any machine should advance at least this many vectorized flow-ticks
#: per second; an order-of-magnitude collapse means a full-width
#: allocation or Python loop landed back on the per-tick path.
ABSOLUTE_FLOOR_TICKS_PER_S = 400_000

#: Batch width: enough points that per-tick fixed costs amortize the
#: way a campaign's NE sweeps do (51 distributions x 7 buffers).
BATCH = 64

LINK = LinkConfig.from_mbps_ms(100, 40, 5.0)
N_FLOWS = 50
DURATION = 30.0
WARMUP = 5.0

#: 50-flow scenario compositions; dt = min RTT / 4.
SCENARIOS = {
    "cubic": ["cubic"] * N_FLOWS,
    "cubic+bbr": ["cubic"] * (N_FLOWS // 2) + ["bbr"] * (N_FLOWS // 2),
    "bbr": ["bbr"] * N_FLOWS,
}


def _flows(name):
    return [FluidSpec(cc=cc) for cc in SCENARIOS[name]]


def _flow_ticks():
    """Flow-ticks advanced per point (dt is min RTT / 4)."""
    dt = LINK.rtt / 4.0
    return int(round(DURATION / dt)) * N_FLOWS


def _measure_scenario(name, repeats=2):
    """Back-to-back scalar vs batched-vec timing for one composition.

    ``process_time`` so co-tenant load cannot masquerade as a hot-path
    change; best-of-``repeats`` with the substrates interleaved so a
    load spike cannot inflate one side's best but not the other's.
    """
    best_scalar = best_vec = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        run_fluid(
            LINK, _flows(name), duration=DURATION, warmup=WARMUP, seed=1
        )
        best_scalar = min(best_scalar, time.process_time() - start)
        points = [
            BatchPoint(
                link=LINK,
                flows=_flows(name),
                duration=DURATION,
                warmup=WARMUP,
                seed=seed,
            )
            for seed in range(BATCH)
        ]
        start = time.process_time()
        run_fluid_vec_batch(points)
        best_vec = min(
            best_vec, (time.process_time() - start) / BATCH
        )
    ticks = _flow_ticks()
    return {
        "scalar_s_per_point": round(best_scalar, 4),
        "vec_s_per_point": round(best_vec, 4),
        "scalar_ticks_per_s": round(ticks / best_scalar),
        "vec_ticks_per_s": round(ticks / best_vec),
        "speedup": round(best_scalar / best_vec, 2),
    }


def _append_record(entry):
    records = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else []
    )
    records.append(entry)
    BENCH_PATH.write_text(json.dumps(records, indent=2) + "\n")


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def test_fluid_tick_throughput_trajectory():
    """Record per-scenario tick rates; gate the CUBIC speedup claim."""
    results = {name: _measure_scenario(name) for name in SCENARIOS}

    machine = platform.machine()
    prior = []
    if BENCH_PATH.exists():
        prior = [
            record
            for record in json.loads(BENCH_PATH.read_text())
            if record.get("machine") == machine
        ]
    _append_record(
        {
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "machine": machine,
            "n_flows": N_FLOWS,
            "duration_s": DURATION,
            "batch": BATCH,
            "scenarios": results,
        }
    )

    # Headline acceptance: batched vec is >= 10x scalar on 50 CUBIC
    # flows.  Re-measure before failing — the ratio is back-to-back,
    # but a scheduler stall inside one leg can still skew a reading.
    cubic = results["cubic"]
    for _ in range(3):
        if cubic["speedup"] >= MIN_SPEEDUP:
            break
        cubic = _measure_scenario("cubic")
    assert cubic["speedup"] >= MIN_SPEEDUP, (
        f"vectorized substrate is only {cubic['speedup']}x scalar on "
        f"the 50-flow CUBIC scenario (need {MIN_SPEEDUP}x): {cubic}"
    )

    for name, result in results.items():
        assert result["vec_ticks_per_s"] > ABSOLUTE_FLOOR_TICKS_PER_S, (
            name,
            result,
        )
        history = [
            record["scenarios"][name]["vec_ticks_per_s"]
            for record in prior
            if name in record.get("scenarios", {})
        ]
        if not history:
            continue
        threshold = (1.0 - REGRESSION_SLACK) * _median(history)
        rate = result["vec_ticks_per_s"]
        for _ in range(3):  # Re-measure: noise clears, regressions don't.
            if rate >= threshold:
                break
            rate = _measure_scenario(name)["vec_ticks_per_s"]
        assert rate >= threshold, (
            f"{name}: {rate} flow-ticks/s is more than "
            f"{REGRESSION_SLACK:.0%} below the recorded median "
            f"{_median(history)}"
        )
