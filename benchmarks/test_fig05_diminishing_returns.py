"""Figure 5 (a–d): diminishing returns for BBR.

Paper result (the paper's central empirical observation): BBR's average
per-flow bandwidth *decreases* as the proportion of BBR flows at the
bottleneck increases, eventually falling to — and potentially below —
the fair share.
"""

import pytest

from repro.experiments.figures import figure5

PANELS = [(10, 3), (20, 3), (10, 10), (20, 10)]


@pytest.mark.parametrize("n_flows,buffer_bdp", PANELS)
def test_figure5_panel(benchmark, scale, save_figure, n_flows, buffer_bdp):
    fig = benchmark.pedantic(
        figure5,
        kwargs={
            "n_flows": n_flows,
            "buffer_bdp": buffer_bdp,
            "scale": scale,
        },
        rounds=1,
        iterations=1,
    )
    save_figure(fig)
    actual = fig.get("actual")
    fair = fig.get("fair-share").y[0]

    # Diminishing returns: the measured per-flow BBR bandwidth trends
    # down (compare first/last halves to tolerate trial noise).
    half = len(actual.y) // 2
    first = sum(actual.y[:half]) / half
    second = sum(actual.y[half:]) / (len(actual.y) - half)
    assert first > second

    # A small BBR minority is above fair share; at all-BBR it is at fair
    # share (within noise).
    assert actual.y[0] > fair
    assert actual.y[-1] == pytest.approx(fair, rel=0.25)

    # The per-flow advantage must cross (or touch) the fair-share line
    # somewhere — the existence of point C in Figure 6.
    assert min(actual.y) <= fair * 1.1
