"""Figure 10: Nash Equilibria among flows with different base RTTs.

Paper result: NE distributions exist in multi-RTT networks too, and the
flows choosing CUBIC at the NE are always the shortest-RTT flows (CUBIC
favours short RTTs; BBR favours long RTTs).
"""

from repro.experiments.figures import figure10


def test_figure10(benchmark, scale, save_figure):
    fig = benchmark.pedantic(
        figure10, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_figure(fig)
    total = fig.get("n-cubic-total")
    short = fig.get("n-cubic-10ms")
    mid = fig.get("n-cubic-30ms")
    long_ = fig.get("n-cubic-50ms")
    group_size = 10 if scale == "full" else 3

    # An NE was found for every buffer depth (series complete).
    assert len(total.y) == len(total.x)

    # Short-RTT-first composition: wherever any flows run CUBIC at the
    # NE, the shortest-RTT group has at least as many CUBIC flows as the
    # mid group, which has at least as many as the longest-RTT group.
    for s, m, l, t in zip(short.y, mid.y, long_.y, total.y):
        assert s + m + l == t
        assert s >= m >= l

    # Deeper buffers do not reduce the CUBIC presence at the NE.
    assert total.y[-1] >= total.y[0]

    # Sanity: counts within group bounds.
    for series in (short, mid, long_):
        assert all(0 <= y <= group_size for y in series.y)
