"""Performance benchmarks for the simulators themselves.

Unlike the figure benchmarks (one-shot experiment regenerations), these
use pytest-benchmark's statistical machinery over multiple rounds: they
are the regression guard for the substrates' throughput — the packet
simulator in packets/second of CPU, the fluid simulator in
flow-ticks/second — and for the model solver's latency.
"""

from repro.core.nash import predict_nash
from repro.core.two_flow import predict_two_flow, solve_bbr_buffer_share
from repro.fluidsim import FluidSpec, run_fluid
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


def test_perf_packet_simulator(benchmark):
    """~42k packets (5 Mbps × 10 s, two flows) through the DES."""
    link = LinkConfig.from_mbps_ms(5, 20, 4)

    result = benchmark(
        run_dumbbell,
        link,
        [FlowSpec("cubic"), FlowSpec("bbr")],
        10.0,
    )
    assert result.aggregate_throughput() > 0


def test_perf_fluid_simulator(benchmark):
    """120 simulated seconds × 20 flows on the fluid core."""
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    specs = [FluidSpec("cubic")] * 10 + [FluidSpec("bbr")] * 10

    result = benchmark(run_fluid, link, specs, 120.0)
    assert result.aggregate_throughput() > 0


def test_perf_model_solver(benchmark):
    """The closed-form Eq. 18 solve (called thousands of times per NE
    region sweep) must stay at microsecond scale."""
    link = LinkConfig.from_mbps_ms(100, 40, 7)

    share = benchmark(solve_bbr_buffer_share, link)
    assert 0 < share < link.buffer_bytes


def test_perf_nash_prediction(benchmark):
    """A full NE prediction (both bounds, fixed point included)."""
    link = LinkConfig.from_mbps_ms(100, 40, 10)

    pred = benchmark(predict_nash, link, 50)
    assert 0 < pred.n_bbr_sync < 50


def test_perf_two_flow_prediction(benchmark):
    link = LinkConfig.from_mbps_ms(50, 80, 12)

    pred = benchmark(predict_two_flow, link)
    assert 0 < pred.bbr_fraction < 1
