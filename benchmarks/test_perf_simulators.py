"""Performance benchmarks for the simulators themselves.

Unlike the figure benchmarks (one-shot experiment regenerations), these
use pytest-benchmark's statistical machinery over multiple rounds: they
are the regression guard for the substrates' throughput — the packet
simulator in packets/second of CPU, the fluid simulator in
flow-ticks/second — and for the model solver's latency.
"""

from repro.core.nash import predict_nash
from repro.core.two_flow import predict_two_flow, solve_bbr_buffer_share
from repro.fluidsim import FluidSpec, run_fluid
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


def test_perf_packet_simulator(benchmark):
    """~42k packets (5 Mbps × 10 s, two flows) through the DES."""
    link = LinkConfig.from_mbps_ms(5, 20, 4)

    result = benchmark(
        run_dumbbell,
        link,
        [FlowSpec("cubic"), FlowSpec("bbr")],
        10.0,
    )
    assert result.aggregate_throughput() > 0


def test_perf_fluid_simulator(benchmark):
    """120 simulated seconds × 20 flows on the fluid core."""
    link = LinkConfig.from_mbps_ms(100, 40, 5)
    specs = [FluidSpec("cubic")] * 10 + [FluidSpec("bbr")] * 10

    result = benchmark(run_fluid, link, specs, 120.0)
    assert result.aggregate_throughput() > 0


def test_perf_model_solver(benchmark):
    """The closed-form Eq. 18 solve (called thousands of times per NE
    region sweep) must stay at microsecond scale."""
    link = LinkConfig.from_mbps_ms(100, 40, 7)

    share = benchmark(solve_bbr_buffer_share, link)
    assert 0 < share < link.buffer_bytes


def test_perf_nash_prediction(benchmark):
    """A full NE prediction (both bounds, fixed point included)."""
    link = LinkConfig.from_mbps_ms(100, 40, 10)

    pred = benchmark(predict_nash, link, 50)
    assert 0 < pred.n_bbr_sync < 50


def test_perf_two_flow_prediction(benchmark):
    link = LinkConfig.from_mbps_ms(50, 80, 12)

    pred = benchmark(predict_two_flow, link)
    assert 0 < pred.bbr_fraction < 1


def test_telemetry_disabled_is_free():
    """The telemetry regression guard (no pytest-benchmark: one paired
    comparison).  A disabled-telemetry run must (a) process exactly the
    same event count as an instrumented run, (b) produce identical flow
    throughputs, and (c) not pay materially for the instrumentation —
    every site guards on a single ``obs is not None`` attribute test.
    """
    from statistics import median
    from time import perf_counter

    from repro.obs import Telemetry

    link = LinkConfig.from_mbps_ms(5, 20, 4)
    specs = [FlowSpec("cubic"), FlowSpec("bbr")]

    def run(obs):
        start = perf_counter()
        result = run_dumbbell(link, specs, 10.0, obs=obs)
        return result, perf_counter() - start

    # Warm up caches/JIT-free interpreter state once.
    run(None)

    plain_times, instr_times = [], []
    plain_result = instr_result = None
    for _ in range(5):
        plain_result, elapsed = run(None)
        plain_times.append(elapsed)
        obs = Telemetry()
        instr_result, elapsed = run(obs)
        instr_times.append(elapsed)
        # Instrumentation must observe, never perturb, the simulation.
        assert obs.counter("sim.events") == instr_result.events_processed

    assert plain_result.events_processed == instr_result.events_processed
    for plain, instr in zip(plain_result.flows, instr_result.flows):
        assert plain.throughput == instr.throughput
        assert plain.loss_rate == instr.loss_rate

    # Generous envelope (the acceptance bound is <5% for disabled runs
    # vs the seed; here we bound disabled vs enabled, which subsumes it):
    # a disabled run must not be slower than an instrumented run by more
    # than noise, nor the instrumented run pathologically slower.
    assert median(plain_times) < median(instr_times) * 1.25


def test_fluid_telemetry_deterministic():
    """Same guard for the fluid substrate: instrumented and plain runs
    take identical trajectories (telemetry must not touch the RNG)."""
    from repro.obs import Telemetry

    link = LinkConfig.from_mbps_ms(100, 40, 5)
    specs = [FluidSpec("cubic")] * 5 + [FluidSpec("bbr")] * 5

    plain = run_fluid(link, specs, 60.0, seed=3)
    obs = Telemetry(sample_interval=0.5)
    instr = run_fluid(link, specs, 60.0, seed=3, obs=obs)

    assert plain.events_processed == instr.events_processed
    for p, i in zip(plain.flows, instr.flows):
        assert p.throughput == i.throughput
        assert p.retransmits == i.retransmits
    assert obs.counter("fluid.steps") == instr.events_processed
    assert obs.samples


def test_perf_packet_red_aqm(benchmark):
    """The RED scenario point: same DES workload as the drop-tail packet
    benchmark above, with the EWMA + drop-lottery AQM in the hot path."""
    link = LinkConfig.from_mbps_ms(5, 20, 4, aqm="red")

    result = benchmark(
        run_dumbbell,
        link,
        [FlowSpec("cubic"), FlowSpec("bbr")],
        10.0,
    )
    assert result.aggregate_throughput() > 0


def test_perf_fluid_red_aqm(benchmark):
    """The RED scenario point on the fluid core (per-tick AQM kernel)."""
    link = LinkConfig.from_mbps_ms(100, 40, 5, aqm="red")
    specs = [FluidSpec("cubic")] * 10 + [FluidSpec("bbr")] * 10

    result = benchmark(run_fluid, link, specs, 120.0)
    assert result.aggregate_throughput() > 0


def test_droptail_fast_path_pays_nothing_for_aqm():
    """The scenario refactor's no-regression guard: a default drop-tail
    run must not pay for the AQM/trace hooks it does not use.  Every
    per-tick site guards on ``self._aqm is None`` / an empty event
    list, so the drop-tail median must stay within noise of the RED
    median (which does strictly more work per tick) — if drop-tail ever
    comes out materially *slower* than RED, the fast path has grown an
    unconditional cost.
    """
    from statistics import median
    from time import perf_counter

    droptail = LinkConfig.from_mbps_ms(100, 40, 5)
    red = droptail.with_aqm("red")
    specs = [FluidSpec("cubic")] * 10 + [FluidSpec("bbr")] * 10

    def run(link):
        start = perf_counter()
        result = run_fluid(link, specs, 60.0, seed=3)
        return result, perf_counter() - start

    run(droptail)  # Warm-up.

    plain_times, red_times = [], []
    for _ in range(5):
        plain_result, elapsed = run(droptail)
        plain_times.append(elapsed)
        red_result, elapsed = run(red)
        red_times.append(elapsed)

    # The guard proper: drop-tail must not be slower than RED + noise.
    assert median(plain_times) < median(red_times) * 1.25
    # And the scenarios must actually differ, or the guard is vacuous.
    assert plain_result != red_result
