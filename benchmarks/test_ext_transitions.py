"""Extension benchmark: the paper's §5 transition narrative, as games.

"CUBIC was able to largely replace New Reno because it was more
aggressive and not very friendly to existing Reno flows... the situation
between BBR and CUBIC is much less straightforward."  Play all three
games and assert their equilibrium structures differ exactly that way:

* Reno vs CUBIC  → unique all-CUBIC NE (full replacement);
* Reno vs Vegas  → all-Reno NE (no adoption incentive);
* CUBIC vs BBR   → a mixed interior NE (coexistence).
"""

from repro.core.game import ThroughputTable
from repro.experiments.runner import distribution_throughput_fn
from repro.util.config import LinkConfig

N_FLOWS = 8
DURATION = 100.0


def _play(incumbent, challenger, seed=21):
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    fn = distribution_throughput_fn(
        link,
        N_FLOWS,
        challenger=challenger,
        incumbent=incumbent,
        duration=DURATION,
        backend="fluid",
        seed=seed,
    )
    table = ThroughputTable.from_function(N_FLOWS, fn)
    return table, table.nash_equilibria(
        tolerance=0.02 * link.capacity / N_FLOWS
    )


def _all_games():
    return {
        "reno-cubic": _play("reno", "cubic"),
        "reno-vegas": _play("reno", "vegas"),
        "cubic-bbr": _play("cubic", "bbr"),
    }


def test_transition_games(benchmark):
    rows = benchmark.pedantic(_all_games, rounds=1, iterations=1)

    # CUBIC vs Reno: a challenger CUBIC flow gains at every mixed
    # distribution, so the game rolls to all-CUBIC.
    table, equilibria = rows["reno-cubic"]
    assert equilibria == [N_FLOWS]
    assert all(
        table.lambda_b[k] > table.lambda_a[k]
        for k in range(1, N_FLOWS)
    )

    # Vegas vs Reno: switching to Vegas never pays; all-Reno is an NE
    # and no interior distribution is.
    _table, equilibria = rows["reno-vegas"]
    assert 0 in equilibria
    assert not any(0 < k < N_FLOWS for k in equilibria)

    # BBR vs CUBIC: at least one *interior* NE (the paper's thesis).
    _table, equilibria = rows["cubic-bbr"]
    assert any(0 < k < N_FLOWS for k in equilibria)
