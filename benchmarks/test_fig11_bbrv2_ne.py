"""Figure 11 (a–b): Nash Equilibria for CUBIC vs. BBRv2.

Paper result: NE also exist for BBRv2; because BBRv2 is less aggressive
than BBR, its NE generally contain *more* CUBIC flows than the
BBR-predicted region for the same buffer size.
"""

import pytest

from repro.experiments.figures import figure11


@pytest.mark.parametrize("capacity_mbps", [50, 100])
def test_figure11_panel(benchmark, scale, save_figure, capacity_mbps):
    fig = benchmark.pedantic(
        figure11,
        kwargs={"capacity_mbps": capacity_mbps, "scale": scale},
        rounds=1,
        iterations=1,
    )
    save_figure(fig)
    sync = fig.get("bbr-sync-bound")
    observed = [
        s for s in fig.series if s.name.startswith("observed-")
    ]
    assert observed, "expected at least one observed-NE series"

    for series in observed:
        # NE found for every buffer depth tested.
        assert set(series.x) == set(sync.x)
        # BBRv2's NE are CUBIC-richer than (or comparable to) the BBR
        # prediction: mean observed CUBIC count ≥ mean sync bound − 10%.
        n_flows = max(max(sync.y), max(series.y)) or 20
        mean_obs = sum(series.y) / len(series.y)
        mean_sync = sum(sync.at(x) for x in series.x) / len(series.x)
        assert mean_obs >= mean_sync - 0.1 * n_flows
