"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark regenerates one paper figure (quick scale by default; set
``REPRO_SCALE=full`` for the paper's exact parameters), saves the rendered
figure and its CSV under ``results/``, and asserts the qualitative
properties the paper reports for it.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    """Figure fidelity: ``quick`` (default) or ``full`` via REPRO_SCALE."""
    value = os.environ.get("REPRO_SCALE", "quick")
    if value not in ("quick", "full"):
        raise ValueError(f"REPRO_SCALE must be quick|full, got {value!r}")
    return value


@pytest.fixture(scope="session")
def save_figure():
    """Persist a FigureResult (text rendering + CSV) under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(fig):
        (RESULTS_DIR / f"{fig.figure_id}.txt").write_text(
            fig.render() + "\n"
        )
        fig.to_csv(str(RESULTS_DIR / f"{fig.figure_id}.csv"))
        return fig

    return _save
