"""Figure 12: model performance in ultra-deep (>100×BDP) buffers.

Paper result: BBR's actual throughput declines as the buffer grows past
~60 BDP and dips below the model's prediction beyond ~100 BDP, because
BBR stops being cwnd-limited there; the model (and Ware et al.) both
over-estimate in that regime.
"""

import pytest

from repro.experiments.figures import figure12


def test_figure12(benchmark, scale, save_figure):
    fig = benchmark.pedantic(
        figure12, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_figure(fig)
    model = fig.get("model")
    actual = fig.get("actual")

    # The model flattens to its deep-buffer asymptote...
    assert model.y[-1] == pytest.approx(model.y[-2], rel=0.05)

    # ...while BBR's actual throughput keeps declining past ~60 BDP.
    deep = [(x, y) for x, y in zip(actual.x, actual.y) if x >= 60]
    assert deep[-1][1] <= deep[0][1] * 1.05

    # Ultra-deep buffers: actual < model (the paper's over-estimation).
    for x, y in deep:
        if x >= 100:
            assert y < model.at(x)

    # Shallow buffers remain in the validity range: actual within a
    # factor-ish of the model (regime boundary, not accuracy, is the
    # point of this figure).
    assert actual.y[0] > 0.5 * model.y[0]
