"""Execution-engine performance: parallel speedup, warm-cache latency,
and the figure-level determinism guard.

The speedup trajectory is appended to ``BENCH_exec.json`` at the repo
root — one record per run with the machine's core count and the
measured sequential / parallel / warm-cache wall times — so the
engine's scaling behavior is tracked across commits.  The >= 2x
speedup assertion only fires on machines with at least 4 cores; on
smaller runners the trajectory is still recorded but process-pool
overhead makes a speedup target meaningless.
"""

import json
import os
import pathlib
import platform
import time

from repro.exec import Engine, ResultCache, ScenarioPoint
from repro.experiments.figures import figure9
from repro.obs import Telemetry
from repro.util.config import LinkConfig

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exec.json"

SWEEP_SIZE = 8


def _sweep_points(duration=40.0):
    """A figure-5-style sweep: distinct buffer depths, 4 flows each."""
    return [
        ScenarioPoint(
            link=LinkConfig.from_mbps_ms(20, 20, 1 + i),
            mix=(("cubic", 2), ("bbr", 2)),
            duration=duration,
        )
        for i in range(SWEEP_SIZE)
    ]


def _vec_sweep_points(duration=40.0):
    """The same sweep declared on the vectorized fluid substrate."""
    return [
        ScenarioPoint(
            link=LinkConfig.from_mbps_ms(20, 20, 1 + i),
            mix=(("cubic", 2), ("bbr", 2)),
            duration=duration,
            backend="fluid-vec",
        )
        for i in range(SWEEP_SIZE)
    ]


def _append_record(entry):
    records = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else []
    )
    records.append(entry)
    BENCH_PATH.write_text(json.dumps(records, indent=2) + "\n")


def test_perf_exec_sequential_sweep(benchmark):
    results = benchmark(lambda: Engine(jobs=1).run_points(_sweep_points()))
    assert len(results) == SWEEP_SIZE


def test_perf_exec_parallel_sweep(benchmark):
    jobs = min(4, os.cpu_count() or 1)
    results = benchmark(
        lambda: Engine(jobs=jobs).run_points(_sweep_points())
    )
    assert len(results) == SWEEP_SIZE


def test_perf_exec_warm_cache(benchmark, tmp_path):
    """Answering a whole sweep from cache must be near-instant."""
    Engine(cache=ResultCache(tmp_path)).run_points(_sweep_points())

    def warm():
        engine = Engine(cache=ResultCache(tmp_path))
        results = engine.run_points(_sweep_points())
        assert engine.stats["simulated"] == 0
        return results

    assert len(benchmark(warm)) == SWEEP_SIZE


def test_parallel_speedup_trajectory(tmp_path):
    """Record sequential vs parallel vs warm wall time in BENCH_exec.json."""
    points = _sweep_points()
    cores = os.cpu_count() or 1
    jobs = min(4, cores)

    start = time.perf_counter()
    sequential = Engine(jobs=1).run_points(points)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = Engine(jobs=jobs).run_points(points)
    parallel_s = time.perf_counter() - start
    assert parallel == sequential  # Parallelism never changes numbers.

    cache = ResultCache(tmp_path)
    Engine(cache=cache).run_points(points)  # Prime.
    start = time.perf_counter()
    warm_engine = Engine(cache=ResultCache(tmp_path))
    warm = warm_engine.run_points(points)
    warm_s = time.perf_counter() - start
    assert warm == sequential
    assert warm_engine.stats["simulated"] == 0

    # Chunked leg: the same sweep on the vectorized substrate, with
    # point-chunking off vs on.  Chunking groups the 8 cheap points and
    # pools them into one VecFluidSim call, so it beats the one-future-
    # per-point path even on a single-core runner, where process-pool
    # parallelism alone cannot rise above 1.0x.
    vec_points = _vec_sweep_points()
    start = time.perf_counter()
    unchunked = Engine(jobs=1, chunking=False).run_points(vec_points)
    unchunked_s = time.perf_counter() - start

    start = time.perf_counter()
    chunked = Engine(jobs=1, chunking=True).run_points(vec_points)
    chunked_s = time.perf_counter() - start
    assert chunked == unchunked  # Chunking never changes numbers.

    speedup = sequential_s / parallel_s if parallel_s > 0 else float("inf")
    chunked_speedup = (
        unchunked_s / chunked_s if chunked_s > 0 else float("inf")
    )
    _append_record(
        {
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "machine": platform.machine(),
            "cpu_count": cores,
            "points": len(points),
            "jobs": jobs,
            "sequential_s": round(sequential_s, 4),
            "parallel_s": round(parallel_s, 4),
            "speedup": round(speedup, 3),
            "warm_cache_s": round(warm_s, 4),
            "vec_unchunked_s": round(unchunked_s, 4),
            "vec_chunked_s": round(chunked_s, 4),
            "chunked_speedup": round(chunked_speedup, 3),
        }
    )
    assert chunked_speedup > 1.0, (
        f"expected chunked fluid-vec sweep to beat one-point-per-call, "
        f"got {chunked_speedup:.2f}x "
        f"({unchunked_s:.2f}s -> {chunked_s:.2f}s)"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with jobs={jobs} on {cores} cores, "
            f"got {speedup:.2f}x ({sequential_s:.2f}s -> {parallel_s:.2f}s)"
        )


def test_fig9_parallel_and_warm_runs_are_identical(tmp_path):
    """The acceptance determinism guard, at figure granularity.

    One quick fig9 panel three ways: jobs=1 cold, jobs=4 cold, and a
    warm rerun over the jobs=4 cache.  All three must produce the
    identical FigureResult, and the warm rerun must invoke the
    simulator zero times (checked through the obs counters).
    """
    kwargs = dict(capacity_mbps=50, rtt_ms=20, scale="quick")
    cold_seq = figure9(
        engine=Engine(jobs=1, cache=ResultCache(tmp_path / "seq")), **kwargs
    )
    par_cache = ResultCache(tmp_path / "par")
    cold_par = figure9(engine=Engine(jobs=4, cache=par_cache), **kwargs)
    assert cold_par == cold_seq

    obs = Telemetry()
    warm_engine = Engine(jobs=4, cache=ResultCache(tmp_path / "par"), obs=obs)
    warm = figure9(engine=warm_engine, **kwargs)
    assert warm == cold_seq
    assert warm_engine.stats["simulated"] == 0
    assert obs.counter("exec.points.simulated") == 0
    assert obs.counter("exec.cache.hits") == obs.counter(
        "exec.points.submitted"
    )


def test_check_disabled_is_free():
    """The sanitizer regression guard (paired comparison, no
    pytest-benchmark).  A checks-off run must (a) produce results
    identical to a checks-on run — the sanitizer observes, never
    perturbs — and (b) not pay materially for the instrumentation:
    every site guards on a single ``check is not None`` attribute
    test, so disabled runs are bounded by enabled runs plus noise.
    """
    from statistics import median

    from repro.check import Checker
    from repro.sim.network import FlowSpec, run_dumbbell

    link = LinkConfig.from_mbps_ms(5, 20, 4)
    specs = [FlowSpec("cubic"), FlowSpec("bbr")]

    def run(check):
        start = time.perf_counter()
        result = run_dumbbell(link, specs, 10.0, check=check)
        return result, time.perf_counter() - start

    run(None)  # Warm up interpreter state once.

    plain_times, checked_times = [], []
    plain_result = checked_result = None
    for _ in range(5):
        plain_result, elapsed = run(None)
        plain_times.append(elapsed)
        check = Checker()
        checked_result, elapsed = run(check)
        checked_times.append(elapsed)
        assert check.checks_run > 0  # The sanitizer actually ran.

    assert (
        plain_result.events_processed == checked_result.events_processed
    )
    for plain, checked in zip(plain_result.flows, checked_result.flows):
        assert plain.throughput == checked.throughput
        assert plain.loss_rate == checked.loss_rate

    assert median(plain_times) < median(checked_times) * 1.25


def test_trace_disabled_is_free():
    """The span-tracing regression guard (paired comparison, no
    pytest-benchmark).  A tracing-off run must (a) produce results
    identical to a tracing-on run — spans observe, never perturb — and
    (b) not pay materially for the instrumentation: every site guards
    on a single ``tracer is not None`` attribute test, so disabled
    runs are bounded by enabled runs plus noise.
    """
    from statistics import median

    from repro.obs.trace import Tracer

    points = _sweep_points(duration=10.0)[:2]

    def run(tracer):
        start = time.perf_counter()
        results = Engine(tracer=tracer).run_points(points)
        return results, time.perf_counter() - start

    run(None)  # Warm up interpreter state once.

    plain_times, traced_times = [], []
    plain_results = traced_results = None
    for _ in range(5):
        plain_results, elapsed = run(None)
        plain_times.append(elapsed)
        tracer = Tracer()
        traced_results, elapsed = run(tracer)
        traced_times.append(elapsed)
        assert tracer.spans  # Spans were actually recorded.

    assert plain_results == traced_results  # Tracing never changes numbers.
    assert median(plain_times) < median(traced_times) * 1.25
