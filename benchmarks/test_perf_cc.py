"""Congestion-control hot path: per-ACK ``on_ack`` throughput.

The laws refactor put every control-law kernel behind
:mod:`repro.cc.laws` with the ``repro.cc`` classes as thin per-ACK
adapters; this benchmark guards the cost of that indirection.  Each
algorithm's controller is driven with a synthetic ACK stream (the same
shape the packet simulator produces) and the achieved ACKs/second per
algorithm is appended to ``BENCH_cc.json`` at the repo root.  When the
file already holds records from the same machine, the run must stay
within ``REGRESSION_SLACK`` of the best recorded rate — a >5% slowdown
of the hot path fails the suite on a like-for-like machine.
"""

import json
import pathlib
import platform
import time

import pytest

from repro.cc import make_controller
from repro.cc.laws import canonical_names
from repro.cc.signals import LossEvent, RateSample

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_cc.json"

#: Tolerated slowdown vs the best recorded rate on this machine.
REGRESSION_SLACK = 0.05

#: Any machine should push at least this many ACKs/s through one
#: controller; an order-of-magnitude collapse means an accidental
#: allocation or import landed on the hot path.
ABSOLUTE_FLOOR_ACKS_PER_S = 20_000

ACKS = 5_000
MSS = 1500


def _drive(cc, acks=ACKS):
    """Feed a controller a synthetic bulk-transfer ACK stream."""
    rtt = 0.04
    delivered = 0
    now = 0.0
    for i in range(acks):
        delivered += MSS
        now += rtt / 10.0
        cc.on_ack(
            RateSample(
                rtt=rtt + 0.002 * (i % 7),
                delivery_rate=2e6,
                delivered=delivered,
                delivered_at_send=max(delivered - 10 * MSS, 0),
                acked_bytes=MSS,
                in_flight=10 * MSS,
                is_app_limited=False,
                now=now,
            )
        )
        if i % 500 == 499:  # Sporadic loss exercises on_loss too.
            cc.on_loss(
                LossEvent(lost_bytes=MSS, in_flight=9 * MSS, now=now)
            )
    return cc


@pytest.mark.parametrize("name", canonical_names())
def test_perf_on_ack(benchmark, name):
    benchmark(lambda: _drive(make_controller(name)))


def _append_record(entry):
    records = (
        json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else []
    )
    records.append(entry)
    BENCH_PATH.write_text(json.dumps(records, indent=2) + "\n")


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure_rate(name):
    """Best-of-5 CPU-time rate for one controller, in ACKs/second.

    ``process_time`` (not wall clock) so co-tenant load on a shared
    runner cannot masquerade as a hot-path regression; best-of so
    one-sided scheduler noise is discarded.
    """
    cc = make_controller(name)
    _drive(cc, acks=500)  # Warm up caches and filter state.
    best_elapsed = float("inf")
    for _ in range(5):
        start = time.process_time()
        _drive(cc)
        best_elapsed = min(best_elapsed, time.process_time() - start)
    return round(ACKS / best_elapsed)


def test_on_ack_throughput_trajectory():
    """Record per-algorithm ACKs/second and guard against regression.

    The measured rate is compared against the *median* of this
    machine's prior records (one fast historical outlier cannot fail
    healthy code), and a below-threshold reading is re-measured before
    it counts: a genuine structural slowdown fails every remeasure,
    while a noise spike clears on retry.
    """
    rates = {name: _measure_rate(name) for name in canonical_names()}

    machine = platform.machine()
    prior = []
    if BENCH_PATH.exists():
        prior = [
            record
            for record in json.loads(BENCH_PATH.read_text())
            if record.get("machine") == machine
        ]
    _append_record(
        {
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "machine": machine,
            "acks": ACKS,
            "acks_per_s": rates,
        }
    )

    assert min(rates.values()) > ABSOLUTE_FLOOR_ACKS_PER_S, rates
    for name, rate in rates.items():
        history = [
            record["acks_per_s"][name]
            for record in prior
            if name in record.get("acks_per_s", {})
        ]
        if not history:
            continue
        threshold = (1.0 - REGRESSION_SLACK) * _median(history)
        for _ in range(3):  # Re-measure: noise clears, regressions don't.
            if rate >= threshold:
                break
            rate = _measure_rate(name)
        assert rate >= threshold, (
            f"{name}: {rate} acks/s is more than "
            f"{REGRESSION_SLACK:.0%} below the recorded median "
            f"{_median(history)}"
        )
