"""Extension benchmark: Nash Equilibria under complex utilities (§4.3).

The paper argues (Figure 8) that because queuing delay is *shared* by
all flows at a bottleneck while throughput is sharply asymmetric,
switching decisions — and hence the NE — remain throughput-driven even
for users who also value delay.  It conjectures that "under simple
utility functions that are linear combinations of throughput and delay,
a Nash Equilibrium distribution will still exist."

We test the conjecture: play the game with
``U = throughput − w·delay`` for increasing delay weights and check an
NE still exists, with the equilibrium barely moving for moderate
weights.
"""

from repro.core.game import ThroughputTable
from repro.experiments.runner import distribution_utility_fn
from repro.util.config import LinkConfig

N_FLOWS = 8
DURATION = 100.0

#: Mbps of throughput a user would trade for 100 ms of queuing delay.
DELAY_WEIGHTS = (0.0, 2.0, 10.0)


def _games():
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    out = {}
    for weight in DELAY_WEIGHTS:
        fn = distribution_utility_fn(
            link,
            N_FLOWS,
            delay_weight=weight,
            duration=DURATION,
            backend="fluid",
            seed=21,
        )
        table = ThroughputTable.from_function(N_FLOWS, fn)
        tolerance = 0.02 * link.capacity / N_FLOWS
        out[weight] = table.nash_equilibria(tolerance=tolerance)
    return out


def test_ne_exists_under_linear_utilities(benchmark):
    rows = benchmark.pedantic(_games, rounds=1, iterations=1)

    # An NE exists at every delay weight (the §4.3 conjecture).
    for weight, equilibria in rows.items():
        assert equilibria, f"no NE at delay weight {weight}"

    # For moderate weights the equilibrium set barely moves relative to
    # the pure-throughput game: the shared delay term cancels out of
    # every switching comparison up to distribution-to-distribution
    # delay differences, which Figure 8b shows are small.
    base = set(rows[0.0])
    moderate = set(rows[2.0])
    assert base & {k - 1 for k in moderate} | base & moderate | base & {
        k + 1 for k in moderate
    }, f"NE moved too far: {base} vs {moderate}"
