"""Figure 4 (a–b): multi-flow model validation (5v5 and 10v10).

Paper result: the measured per-flow BBR throughput falls within the
region between the CUBIC-synchronized and de-synchronized bounds, and
Ware et al.'s prediction runs near one edge in deep buffers.
"""

import pytest

from repro.experiments.figures import figure4


@pytest.mark.parametrize("n_per_class", [5, 10])
def test_figure4_panel(benchmark, scale, save_figure, n_per_class):
    fig = benchmark.pedantic(
        figure4,
        kwargs={"n_per_class": n_per_class, "scale": scale},
        rounds=1,
        iterations=1,
    )
    save_figure(fig)
    sync = fig.get("sync-bound")
    desync = fig.get("desync-bound")
    actual = fig.get("actual")
    fair = 100.0 / (2 * n_per_class)

    # The bounds are ordered: desync (fuller buffer, more RTT bloat for
    # BBR) is the upper edge.
    assert all(d >= s - 1e-9 for d, s in zip(desync.y, sync.y))

    # Containment: the measured mean lies inside (or within 25% of the
    # region's width + 1 Mbps of) the predicted region at each buffer.
    inside = 0
    for s, d, a in zip(sync.y, desync.y, actual.y):
        slack = 0.25 * (d - s) + 1.0
        if s - slack <= a <= d + slack:
            inside += 1
    assert inside >= 0.7 * len(actual.y)

    # A minority BBR class above fair share in shallow buffers.
    assert actual.y[0] > fair * 0.9
