"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the sensitivity of the
model's predictions to its two strongest assumptions (§5's discussion)
and to CUBIC's backoff parameter, and measure where the fluid
simulator's emergent synchronization lands between the §2.4 bounds.
"""


from repro.core.nash import predict_nash
from repro.core.two_flow import predict_two_flow, solve_bbr_buffer_share
from repro.experiments.runner import run_mix
from repro.util.config import LinkConfig


def link(bdp, mbps=100, rtt=40):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def _sweep_cwnd_gain():
    """BBR share across buffer depths for in-flight caps of 1.25–2 BDP."""
    rows = {}
    for gain in (1.25, 1.5, 2.0):
        rows[gain] = [
            predict_two_flow(link(bdp), cwnd_gain=gain).bbr_fraction
            for bdp in (2, 5, 10, 30)
        ]
    return rows


def test_ablation_inflight_cap(benchmark):
    """§5 "Assumption of 2 BDP packets in flight": the true in-flight
    level averages between 1 and 2 BDP; smaller caps predict less BBR
    bandwidth, bounding the assumption's contribution to model error."""
    rows = benchmark.pedantic(_sweep_cwnd_gain, rounds=1, iterations=1)
    for idx in range(4):
        assert rows[1.25][idx] < rows[1.5][idx] < rows[2.0][idx]
    # The cap matters less in deep buffers (CUBIC dominates anyway):
    spread_shallow = rows[2.0][0] - rows[1.25][0]
    spread_deep = rows[2.0][3] - rows[1.25][3]
    assert spread_deep < spread_shallow


def _sweep_beta():
    """NE position vs the CUBIC multiplicative-decrease parameter."""
    out = {}
    for beta in (0.5, 0.7, 0.85):
        out[beta] = [
            50
            - 50
            * solve_bbr_buffer_share(link(bdp), backoff=beta)
            / link(bdp).buffer_bytes
            for bdp in (5, 20)
        ]
    return out


def test_ablation_cubic_beta(benchmark):
    """A gentler CUBIC backoff (larger β) leaves more packets in the
    buffer after loss, bloats BBR's RTT estimate more, and moves the NE
    toward BBR — Reno's β=0.5 would have resisted BBR harder."""
    rows = benchmark.pedantic(_sweep_beta, rounds=1, iterations=1)
    for idx in range(2):
        n_cubic_reno = rows[0.5][idx]
        n_cubic_cubic = rows[0.7][idx]
        n_cubic_gentle = rows[0.85][idx]
        assert n_cubic_reno > n_cubic_cubic > n_cubic_gentle


def _measure_loss_modes():
    cfg = link(5)
    out = {}
    for mode in ("sync", "desync", "proportional"):
        result = run_mix(
            cfg,
            [("cubic", 5), ("bbr", 5)],
            duration=90,
            backend="fluid",
            trials=3,
            seed=13,
            loss_mode=mode,
        )
        out[mode] = result.per_flow["bbr"]
    return out


def test_ablation_loss_synchronization(benchmark):
    """The fluid simulator's §2.4 knob: imposed sync/desync loss
    assignment versus the default emergent (proportional) mode.  The
    emergent mode must land near the band the imposed modes span (the
    imposed modes themselves can nearly coincide at some operating
    points, so the band is widened by a quarter of the fair share)."""
    rows = benchmark.pedantic(_measure_loss_modes, rounds=1, iterations=1)
    lo = min(rows["sync"], rows["desync"])
    hi = max(rows["sync"], rows["desync"])
    fair = link(5).capacity / 10.0
    slack = 0.25 * fair
    assert lo - slack <= rows["proportional"] <= hi + slack


def _full_buffer_residual():
    """How full is the buffer really?  The model assumes b_b + b_c ≈ B
    (its 'most problematic' inherited assumption, made safe by B ≥ 1 BDP
    + CUBIC presence).  Measure mean queue/buffer on the fluid sim."""
    occupancy = {}
    for bdp in (2, 5, 15):
        cfg = link(bdp)
        result = run_mix(
            cfg,
            [("cubic", 1), ("bbr", 1)],
            duration=120,
            backend="fluid",
            seed=3,
        )
        occupancy[bdp] = (
            result.mean_queuing_delay / cfg.max_queuing_delay
        )
    return occupancy


def test_ablation_full_buffer_approximation(benchmark):
    """The b_b + b_c ≈ B approximation: the buffer is mostly — but never
    perfectly — occupied (the CUBIC sawtooth dips to ~(B−K)/2 at every
    backoff).  Mean occupancy between 50% and 95% across depths is what
    makes the approximation serviceable while Ware et al.'s *always*-full
    assumption fails (§2.2)."""
    rows = benchmark.pedantic(
        _full_buffer_residual, rounds=1, iterations=1
    )
    for depth, occupancy in rows.items():
        assert 0.5 < occupancy < 0.95, (depth, occupancy)


def test_ablation_ne_vs_flow_count(benchmark):
    """The NE fraction is invariant to the population size (the paper
    argues its 50-flow results should qualitatively scale up)."""

    def sweep():
        return {
            n: predict_nash(link(10), n).n_cubic_sync / n
            for n in (10, 50, 200, 1000)
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = list(rows.values())
    assert max(values) - min(values) < 1e-9
