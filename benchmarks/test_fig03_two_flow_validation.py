"""Figure 3 (a–d): 2-flow model validation across links and RTTs.

Paper result: the model tracks BBR's measured bandwidth within ~5%
(the packet-level substrate here: within a handful of percentage points
of capacity at paper scale), always more accurately than Ware et al.;
predictions are stable across link speeds and RTTs.
"""

import pytest

from repro.experiments.figures import figure3

PANELS = [(50, 40), (50, 80), (100, 40), (100, 80)]


@pytest.mark.parametrize("capacity_mbps,rtt_ms", PANELS)
def test_figure3_panel(benchmark, scale, save_figure, capacity_mbps, rtt_ms):
    fig = benchmark.pedantic(
        figure3,
        kwargs={
            "capacity_mbps": capacity_mbps,
            "rtt_ms": rtt_ms,
            "scale": scale,
        },
        rounds=1,
        iterations=1,
    )
    save_figure(fig)
    model = fig.get("model")
    ware = fig.get("ware")
    actual = fig.get("actual")
    capacity = capacity_mbps

    def total_error(series):
        return sum(
            abs(p - a) for p, a in zip(series.y, actual.y)
        ) / len(actual.y)

    # Who wins: our model beats Ware et al. on mean absolute error.
    assert total_error(model) < total_error(ware)

    # The model's error stays moderate (quick scale uses 30 s flows; the
    # paper's 5% needs 120 s averaging — see EXPERIMENTS.md).
    assert total_error(model) < 0.15 * capacity

    # Shape: BBR's share declines with buffer depth in both model and
    # measurement (compare the shallow and deep thirds).
    third = max(len(actual.y) // 3, 1)
    for series in (model, actual):
        assert sum(series.y[:third]) > sum(series.y[-third:])


def test_figure3_scale_invariance(scale):
    """The model's BDP-normalized predictions are identical across
    panels (§3.1's stability observation, checked exactly)."""
    from repro.core.two_flow import predict_two_flow
    from repro.util.config import LinkConfig

    for depth in (2, 10, 25):
        fractions = {
            predict_two_flow(
                LinkConfig.from_mbps_ms(c, r, depth)
            ).bbr_fraction
            for c, r in PANELS
        }
        assert max(fractions) - min(fractions) < 1e-12
