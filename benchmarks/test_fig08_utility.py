"""Figure 8 (a–b): throughput vs. queuing delay across distributions.

Paper result: throughput differs sharply between CUBIC and BBR and flips
ordering along the sweep, while the (shared) queuing delay barely changes
until every flow is BBR — so throughput, not delay, drives switching.
"""

from repro.experiments.figures import figure8


def test_figure8(benchmark, scale, save_figure):
    fig_a, fig_b = benchmark.pedantic(
        figure8, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_figure(fig_a)
    save_figure(fig_b)

    bbr = fig_a.get("bbr")
    cubic = fig_a.get("cubic")
    delay = fig_b.get("queuing-delay")

    # Throughput asymmetry: BBR starts well above CUBIC...
    assert bbr.y[1] > cubic.y[1] * 1.5
    # ...and the gap shrinks (or flips) as BBR flows multiply.
    gaps = [
        b - c
        for b, c, x in zip(bbr.y, cubic.y, bbr.x)
        if 0 < x < bbr.x[-1]
    ]
    assert gaps[0] > gaps[-1]

    # Queuing delay is nearly flat across mixed distributions: the spread
    # is small relative to its level (CUBIC keeps the buffer full as long
    # as any CUBIC flow remains).
    mixed = delay.y[:-1]
    assert max(mixed) - min(mixed) < 0.5 * max(mixed)

    # Only the all-BBR point drops the delay meaningfully.
    assert delay.y[-1] < 0.8 * max(mixed)
