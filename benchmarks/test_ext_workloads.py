"""Extension benchmark: the equilibrium structure under traffic churn.

Beyond the paper (its §5 names diverse workloads as future work): add
web-like Poisson short flows on top of the long-flow competition and
check that the diminishing-returns property — the load-bearing fact for
the Nash-equilibrium argument — survives.
"""

import random

from repro.fluidsim import run_fluid
from repro.util.config import LinkConfig
from repro.workloads import (
    long_lived,
    poisson_short_flows,
    to_fluid_specs,
)

N_LONG = 10
DURATION = 110.0


def _sweep_with_churn(seed: int = 9):
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    rows = {}
    for n_bbr in (1, 3, 5, 8):
        rng = random.Random(seed)
        workload = (
            long_lived("cubic", N_LONG - n_bbr)
            + long_lived("bbr", n_bbr)
            + poisson_short_flows(
                "cubic",
                arrival_rate=2.0,
                duration=DURATION,
                mean_size=500_000,
                rng=rng,
            )
        )
        result = run_fluid(
            link,
            to_fluid_specs(workload),
            duration=DURATION,
            warmup=20,
            seed=seed,
            start_jitter=1.0,
        )
        longs = result.flows[:N_LONG]
        bbr = [f.throughput for f in longs if f.cc == "bbr"]
        rows[n_bbr] = sum(bbr) / len(bbr)
    return rows


def test_diminishing_returns_survive_short_flow_churn(benchmark):
    rows = benchmark.pedantic(_sweep_with_churn, rounds=1, iterations=1)
    values = [rows[k] for k in sorted(rows)]
    # Monotone decline of per-flow BBR bandwidth, churn notwithstanding.
    assert all(a > b for a, b in zip(values, values[1:]))
    # A lone BBR flow still beats fair share despite the churn.
    fair = 100e6 / 8 / N_LONG
    assert rows[1] > fair
