"""Figure 9 (a–f): predicted Nash Region vs. empirically found NE.

Paper result: empirical NE fall inside the model-predicted region except
at high BDPs (where BBR is not yet cwnd-limited and the model
over-predicts BBR, i.e. the real NE has *more* CUBIC flows); more CUBIC
flows appear at the NE in deeper buffers; and the BDP-normalized region
is identical across link speeds and base RTTs.
"""

import pytest

from repro.experiments.figures import figure9

PANELS = [(50, 20), (50, 40), (50, 80), (100, 20), (100, 40), (100, 80)]


@pytest.mark.parametrize("capacity_mbps,rtt_ms", PANELS)
def test_figure9_panel(benchmark, scale, save_figure, capacity_mbps, rtt_ms):
    fig = benchmark.pedantic(
        figure9,
        kwargs={
            "capacity_mbps": capacity_mbps,
            "rtt_ms": rtt_ms,
            "scale": scale,
        },
        rounds=1,
        iterations=1,
    )
    save_figure(fig)
    sync = fig.get("sync-bound")
    desync = fig.get("desync-bound")
    observed = fig.get("observed-ne")
    n_flows = max(max(sync.y), max(observed.y)) or 20

    # NE exist at every buffer depth tested.
    assert set(observed.x) == set(sync.x)

    # The predicted region grows with buffer depth (more CUBIC at NE).
    assert sync.y[-1] > sync.y[1]
    assert sync.y[0] == 0  # Sub-BDP buffer → all-BBR NE.

    # Region containment at low-to-moderate BDP (the paper's validity
    # domain); allow the region widened by 20% of the flow count.
    total = 0
    inside = 0
    for x, y in zip(observed.x, observed.y):
        if x > 10:
            continue
        lo = min(desync.at(x), sync.at(x))
        hi = max(desync.at(x), sync.at(x))
        slack = 0.2 * n_flows
        total += 1
        inside += int(lo - slack <= y <= hi + slack)
    assert total > 0 and inside >= 0.7 * total

    # Deep-buffer deviation direction matches the paper: when outside the
    # region, the observed NE has MORE CUBIC flows than predicted.
    deep_obs = [y for x, y in zip(observed.x, observed.y) if x >= 35]
    deep_hi = max(max(sync.y), max(desync.y))
    if deep_obs:
        assert max(deep_obs) >= deep_hi - 0.2 * n_flows


def test_figure9_region_bdp_invariance(scale):
    """§4.4: the predicted region depends only on the buffer in BDP."""
    from repro.core.nash import predict_nash
    from repro.util.config import LinkConfig

    for depth in (2, 10, 50):
        values = {
            round(
                predict_nash(
                    LinkConfig.from_mbps_ms(c, r, depth), 50
                ).n_cubic_sync,
                9,
            )
            for c, r in PANELS
        }
        assert len(values) == 1
