"""Figure 1: the Ware et al. model's gap from BBR's actual share.

Paper result: Ware et al. predicts a near-constant ~half-capacity share
for BBR, while the actual share declines with buffer depth — at least 30%
error in shallow-to-moderate buffers.
"""

from repro.experiments.figures import figure1


def test_figure1(benchmark, scale, save_figure):
    fig = benchmark.pedantic(
        figure1, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_figure(fig)
    ware = fig.get("ware")
    actual = fig.get("actual")

    # Ware stays in a narrow band near half capacity (25 of 50 Mbps)...
    deep = [y for x, y in zip(ware.x, ware.y) if x >= 5]
    assert all(15.0 <= y <= 30.0 for y in deep)

    # ...while the measured share falls well below it in deep buffers.
    deep_actual = [y for x, y in zip(actual.x, actual.y) if x >= 20]
    deep_ware = [y for x, y in zip(ware.x, ware.y) if x >= 20]
    assert sum(deep_actual) < sum(deep_ware)

    # The paper's ≥30% error claim, averaged over the deep half.
    errors = [
        abs(w - a) / max(a, 1e-9)
        for x, w, a in zip(ware.x, ware.y, actual.y)
        if x >= 10
    ]
    assert sum(errors) / len(errors) > 0.30
