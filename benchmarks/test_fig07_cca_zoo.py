"""Figure 7: do other CCAs have the disproportionate-share property?

Paper result: BBR, BBRv2, and PCC Vivace all claim a disproportionately
large share against CUBIC when their flows are few (→ an NE exists for
each of them vs CUBIC); Copa obtains *lower* than fair-share throughput
for every distribution (→ perhaps no interior NE for Copa).
"""

from repro.core.game import ThroughputTable, ne_existence_conditions
from repro.experiments.figures import figure7


def test_figure7(benchmark, scale, save_figure):
    fig = benchmark.pedantic(
        figure7, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_figure(fig)
    fair = fig.get("fair-share").y[0]
    n_flows = 10
    capacity = fair * n_flows

    # §4.2's sufficient conditions, evaluated per algorithm.
    for algo, expect_ne in (
        ("bbr", True),
        ("bbr2", True),
        ("vivace", True),
        ("copa", False),
    ):
        series = fig.get(algo)
        lambda_b = [0.0] + list(series.y)
        lambda_a = [0.0] * (n_flows + 1)  # Condition check ignores A.
        table = ThroughputTable(
            n_flows=n_flows, lambda_a=lambda_a, lambda_b=lambda_b
        )
        flags = ne_existence_conditions(table, capacity)
        assert flags["ne_expected"] == expect_ne, (algo, flags)

    # Disproportionate share when few, for the three aggressive CCAs.
    for algo in ("bbr", "bbr2", "vivace"):
        series = fig.get(algo)
        assert series.y[0] > fair, f"{algo} should beat fair share when few"

    # Copa stays below fair share for every mixed distribution.
    copa = fig.get("copa")
    assert all(y < fair for y in copa.y[:-1])

    # Diminishing returns for the aggressive CCAs: few-flow share exceeds
    # the (near-fair) all-X share.
    for algo in ("bbr", "vivace"):
        series = fig.get(algo)
        assert series.y[0] > series.y[-1]

    # BBRv2 is less aggressive than BBR at every mixed distribution.
    bbr = fig.get("bbr")
    bbr2 = fig.get("bbr2")
    assert sum(bbr2.y[:-1]) < sum(bbr.y[:-1])
